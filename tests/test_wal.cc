// Tests for the write-ahead log and MVCC store recovery, including
// torn-tail crash simulation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "txn/mvcc_store.h"
#include "txn/wal.h"

namespace agora {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/agora_wal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Bytes currently in the log file.
  size_t FileSize() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<size_t>(in.tellg()) : 0;
  }

  /// Truncates the log to `bytes` (simulating a crash mid-write).
  void TruncateTo(size_t bytes) {
    std::ifstream in(path_, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    contents.resize(bytes);
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<long>(contents.size()));
  }

  std::string path_;
};

TEST_F(WalTest, AppendAndReadBack) {
  {
    auto wal = WriteAheadLog::Open({path_, true});
    ASSERT_TRUE(wal.ok());
    std::unordered_map<std::string, std::optional<std::string>> writes;
    writes["a"] = "1";
    writes["b"] = std::nullopt;  // tombstone
    ASSERT_TRUE((*wal)->AppendCommit(7, writes).ok());
    writes.clear();
    writes["c"] = std::string("long value with spaces and \0 binary", 36);
    ASSERT_TRUE((*wal)->AppendCommit(8, writes).ok());
  }
  auto commits = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(commits.ok());
  ASSERT_EQ(commits->size(), 2u);
  EXPECT_EQ((*commits)[0].commit_ts, 7u);
  EXPECT_EQ((*commits)[0].writes.size(), 2u);
  EXPECT_EQ((*commits)[1].commit_ts, 8u);
  ASSERT_TRUE((*commits)[1].writes[0].second.has_value());
  EXPECT_NE((*commits)[1].writes[0].second->find('\0'), std::string::npos);
}

TEST_F(WalTest, MissingFileIsEmpty) {
  auto commits = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(commits.ok());
  EXPECT_TRUE(commits->empty());
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    auto wal = WriteAheadLog::Open({path_, true});
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      std::unordered_map<std::string, std::optional<std::string>> writes;
      writes["k" + std::to_string(i)] = "v" + std::to_string(i);
      ASSERT_TRUE((*wal)->AppendCommit(static_cast<uint64_t>(i + 1), writes)
                      .ok());
    }
  }
  size_t full = FileSize();
  TruncateTo(full - 3);  // rip bytes off the last record
  auto commits = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(commits.ok());
  EXPECT_EQ(commits->size(), 4u);  // last record dropped, rest intact
}

TEST_F(WalTest, CorruptMiddleStopsReplayCleanly) {
  {
    auto wal = WriteAheadLog::Open({path_, true});
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      std::unordered_map<std::string, std::optional<std::string>> writes;
      writes["k"] = "v" + std::to_string(i);
      ASSERT_TRUE((*wal)->AppendCommit(static_cast<uint64_t>(i + 1), writes)
                      .ok());
    }
  }
  // Flip a byte inside the second record's payload.
  std::ifstream in(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents[contents.size() / 2] ^= 0x5A;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<long>(contents.size()));
  out.close();

  auto commits = WriteAheadLog::ReadAll(path_);
  ASSERT_TRUE(commits.ok());
  EXPECT_LT(commits->size(), 3u);  // replay stops at the corruption
}

TEST_F(WalTest, StoreRecoversCommittedState) {
  {
    MvccStore store;
    ASSERT_TRUE(store.EnableWal({path_, true}).ok());
    ASSERT_TRUE(store.Put("alpha", "1").ok());
    ASSERT_TRUE(store.Put("beta", "2").ok());
    // Overwrite + delete in one transaction.
    Transaction txn = store.Begin();
    txn.Put("alpha", "10");
    txn.Delete("beta");
    ASSERT_TRUE(txn.Commit().ok());
  }  // "crash": store destroyed, WAL remains

  MvccStore recovered;
  ASSERT_TRUE(recovered.EnableWal({path_, true}).ok());
  auto alpha = recovered.Get("alpha");
  ASSERT_TRUE(alpha.has_value());
  EXPECT_EQ(*alpha, "10");
  EXPECT_FALSE(recovered.Get("beta").has_value());  // tombstone replayed

  // The recovered store keeps working and logging.
  ASSERT_TRUE(recovered.Put("gamma", "3").ok());
  MvccStore again;
  ASSERT_TRUE(again.EnableWal({path_, true}).ok());
  EXPECT_EQ(*again.Get("gamma"), "3");
  EXPECT_EQ(*again.Get("alpha"), "10");
}

TEST_F(WalTest, AbortedTransactionsAreNotLogged) {
  {
    MvccStore store;
    ASSERT_TRUE(store.EnableWal({path_, true}).ok());
    ASSERT_TRUE(store.Put("k", "committed").ok());
    Transaction txn = store.Begin();
    txn.Put("k", "aborted");
    txn.Abort();
  }
  MvccStore recovered;
  ASSERT_TRUE(recovered.EnableWal({path_, true}).ok());
  EXPECT_EQ(*recovered.Get("k"), "committed");
}

TEST_F(WalTest, EnableWalOnNonEmptyStoreRejected) {
  MvccStore store;
  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_EQ(store.EnableWal({path_, true}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WalTest, CheckpointCompactsAndPreservesState) {
  {
    MvccStore store;
    ASSERT_TRUE(store.EnableWal({path_, true}).ok());
    // Many overwrites + a delete: log grows with history.
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store.Put("hot", std::to_string(i)).ok());
    }
    ASSERT_TRUE(store.Put("stable", "kept").ok());
    ASSERT_TRUE(store.Put("doomed", "gone").ok());
    Transaction txn = store.Begin();
    txn.Delete("doomed");
    ASSERT_TRUE(txn.Commit().ok());

    size_t before = FileSize();
    ASSERT_TRUE(store.Checkpoint().ok());
    size_t after = FileSize();
    EXPECT_LT(after, before);  // history and tombstones compacted away

    // The store keeps working post-checkpoint.
    ASSERT_TRUE(store.Put("post", "ckpt").ok());
  }
  MvccStore recovered;
  ASSERT_TRUE(recovered.EnableWal({path_, true}).ok());
  EXPECT_EQ(*recovered.Get("hot"), "49");
  EXPECT_EQ(*recovered.Get("stable"), "kept");
  EXPECT_FALSE(recovered.Get("doomed").has_value());
  EXPECT_EQ(*recovered.Get("post"), "ckpt");
}

TEST_F(WalTest, CheckpointWithoutWalRejected) {
  MvccStore store;
  EXPECT_EQ(store.Checkpoint().code(), StatusCode::kInvalidArgument);
}

TEST_F(WalTest, RecoveryPreservesConflictDetection) {
  {
    MvccStore store;
    ASSERT_TRUE(store.EnableWal({path_, true}).ok());
    ASSERT_TRUE(store.Put("k", "0").ok());
  }
  MvccStore recovered;
  ASSERT_TRUE(recovered.EnableWal({path_, true}).ok());
  // Timestamps continue past the recovered clock: a new conflict works.
  Transaction t1 = recovered.Begin();
  Transaction t2 = recovered.Begin();
  t1.Put("k", "1");
  t2.Put("k", "2");
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_EQ(t2.Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(*recovered.Get("k"), "1");
}

}  // namespace
}  // namespace agora
