#include "exec/physical_planner.h"

#include <limits>

#include "common/thread_pool.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/hybrid_search.h"
#include "exec/join.h"
#include "exec/parallel.h"
#include "exec/scan.h"
#include "exec/sort_limit.h"
#include "exec/union_op.h"
#include "expr/expr_rewrite.h"

namespace agora {

namespace {

/// Extracts [lo, hi] range constraints over base-table columns from the
/// conjuncts of `predicate` (bound against the scan's projected schema).
/// `projection` maps projected index -> base column (empty = identity).
std::vector<ColumnRangeConstraint> ExtractRanges(
    const ExprPtr& predicate, const std::vector<size_t>& projection) {
  std::vector<ColumnRangeConstraint> ranges;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const ExprPtr& conjunct : SplitConjuncts(predicate)) {
    if (conjunct->kind() != ExprKind::kComparison) continue;
    const auto* cmp = static_cast<const ComparisonExpr*>(conjunct.get());
    const Expr* col_side = cmp->left().get();
    const Expr* lit_side = cmp->right().get();
    CompareOp op = cmp->op();
    if (col_side->kind() != ExprKind::kColumnRef ||
        lit_side->kind() != ExprKind::kLiteral) {
      // Try the mirrored orientation.
      col_side = cmp->right().get();
      lit_side = cmp->left().get();
      op = SwapCompareOp(op);
      if (col_side->kind() != ExprKind::kColumnRef ||
          lit_side->kind() != ExprKind::kLiteral) {
        continue;
      }
    }
    const auto* ref = static_cast<const ColumnRefExpr*>(col_side);
    const auto* lit = static_cast<const LiteralExpr*>(lit_side);
    if (lit->value().is_null()) continue;
    if (!IsNumeric(ref->result_type()) &&
        ref->result_type() != TypeId::kBool) {
      continue;
    }
    if (lit->value().type() == TypeId::kString) continue;
    double v = lit->value().AsDouble();
    ColumnRangeConstraint r;
    r.column = projection.empty() ? ref->index() : projection[ref->index()];
    switch (op) {
      case CompareOp::kEq:
        r.lo = v;
        r.hi = v;
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
        r.lo = -kInf;
        r.hi = v;
        break;
      case CompareOp::kGt:
      case CompareOp::kGe:
        r.lo = v;
        r.hi = kInf;
        break;
      case CompareOp::kNe:
        continue;  // not a range
    }
    ranges.push_back(r);
  }
  return ranges;
}

/// Finds a `col = constant` equality conjunct usable by an existing hash
/// index. Returns true and fills outputs when found.
bool FindIndexableEquality(const ExprPtr& predicate, const Table& table,
                           const std::vector<size_t>& projection,
                           size_t* key_column, Value* key) {
  for (const ExprPtr& conjunct : SplitConjuncts(predicate)) {
    if (conjunct->kind() != ExprKind::kComparison) continue;
    const auto* cmp = static_cast<const ComparisonExpr*>(conjunct.get());
    if (cmp->op() != CompareOp::kEq) continue;
    const Expr* col_side = cmp->left().get();
    const Expr* lit_side = cmp->right().get();
    if (col_side->kind() != ExprKind::kColumnRef ||
        lit_side->kind() != ExprKind::kLiteral) {
      col_side = cmp->right().get();
      lit_side = cmp->left().get();
      if (col_side->kind() != ExprKind::kColumnRef ||
          lit_side->kind() != ExprKind::kLiteral) {
        continue;
      }
    }
    const auto* ref = static_cast<const ColumnRefExpr*>(col_side);
    const auto* lit = static_cast<const LiteralExpr*>(lit_side);
    if (lit->value().is_null()) continue;
    size_t base_col =
        projection.empty() ? ref->index() : projection[ref->index()];
    std::shared_ptr<const HashIndex> index = table.GetHashIndex(base_col);
    if (index == nullptr) continue;
    // The stored hash must match the probe hash: require identical types.
    if (lit->value().type() != table.schema().field(base_col).type) continue;
    *key_column = base_col;
    *key = lit->value();
    return true;
  }
  return false;
}

class PlannerImpl {
 public:
  PlannerImpl(ExecContext* context, const PhysicalPlannerOptions& options)
      : context_(context), options_(options) {}

  Result<PhysicalOpPtr> Lower(const LogicalOpPtr& node) {
    switch (node->kind()) {
      case LogicalOpKind::kScan:
        return LowerScan(static_cast<const LogicalScan&>(*node));
      case LogicalOpKind::kFilter: {
        const auto& f = static_cast<const LogicalFilter&>(*node);
        AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child, Lower(f.children()[0]));
        return PhysicalOpPtr(std::make_unique<PhysicalFilter>(
            std::move(child), f.predicate(), context_));
      }
      case LogicalOpKind::kProject: {
        const auto& p = static_cast<const LogicalProject&>(*node);
        AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child, Lower(p.children()[0]));
        return PhysicalOpPtr(std::make_unique<PhysicalProject>(
            std::move(child), p.exprs(), p.schema(), context_));
      }
      case LogicalOpKind::kJoin:
        return LowerJoin(static_cast<const LogicalJoin&>(*node));
      case LogicalOpKind::kAggregate: {
        const auto& a = static_cast<const LogicalAggregate&>(*node);
        AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child, Lower(a.children()[0]));
        // The aggregate parallelizes its own accumulation over a pipeline
        // child — except for DISTINCT aggregates, whose dedup sets cannot
        // be merged from partials. Those get a Gather exchange below them
        // so at least the scan/filter work runs on the pool.
        bool has_distinct = false;
        for (const AggregateSpec& spec : a.aggregates()) {
          has_distinct = has_distinct || spec.distinct;
        }
        if (has_distinct) child = MaybeGather(std::move(child));
        return PhysicalOpPtr(std::make_unique<PhysicalHashAggregate>(
            std::move(child), a.group_by(), a.aggregates(), a.schema(),
            context_));
      }
      case LogicalOpKind::kSort: {
        const auto& s = static_cast<const LogicalSort&>(*node);
        AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child, Lower(s.children()[0]));
        // Sort re-orders its whole input anyway, so the exchange's
        // morsel-ordered merge keeps results exact.
        return PhysicalOpPtr(std::make_unique<PhysicalSort>(
            MaybeGather(std::move(child)), s.keys(), context_));
      }
      case LogicalOpKind::kLimit: {
        const auto& l = static_cast<const LogicalLimit&>(*node);
        // Fuse Limit(Sort(x)) into TopK when enabled. The binder places
        // the sort below the final projection, so also match
        // Limit(Project(Sort(x))) and keep the projection on top.
        if (options_.enable_topk && l.limit() >= 0 &&
            l.children()[0]->kind() == LogicalOpKind::kSort) {
          const auto& s = static_cast<const LogicalSort&>(*l.children()[0]);
          AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                                 Lower(s.children()[0]));
          return PhysicalOpPtr(std::make_unique<PhysicalTopK>(
              MaybeGather(std::move(child)), s.keys(), l.limit(),
              l.offset(), context_));
        }
        if (options_.enable_topk && l.limit() >= 0 &&
            l.children()[0]->kind() == LogicalOpKind::kProject &&
            l.children()[0]->children()[0]->kind() == LogicalOpKind::kSort) {
          const auto& p =
              static_cast<const LogicalProject&>(*l.children()[0]);
          const auto& s =
              static_cast<const LogicalSort&>(*p.children()[0]);
          AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                                 Lower(s.children()[0]));
          auto topk = std::make_unique<PhysicalTopK>(
              MaybeGather(std::move(child)), s.keys(), l.limit(),
              l.offset(), context_);
          return PhysicalOpPtr(std::make_unique<PhysicalProject>(
              std::move(topk), p.exprs(), p.schema(), context_));
        }
        AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child, Lower(l.children()[0]));
        return PhysicalOpPtr(std::make_unique<PhysicalLimit>(
            std::move(child), l.limit(), l.offset(), context_));
      }
      case LogicalOpKind::kDistinct: {
        AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                               Lower(node->children()[0]));
        // Distinct's dedup keys don't depend on input order, and the
        // exchange replays chunks in morsel order, so the surviving-row
        // order matches the serial path exactly.
        return PhysicalOpPtr(std::make_unique<PhysicalDistinct>(
            MaybeGather(std::move(child)), context_));
      }
      case LogicalOpKind::kUnion: {
        std::vector<PhysicalOpPtr> children;
        for (const auto& child : node->children()) {
          AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr lowered, Lower(child));
          children.push_back(std::move(lowered));
        }
        return PhysicalOpPtr(std::make_unique<PhysicalUnion>(
            std::move(children), context_));
      }
      case LogicalOpKind::kScoreFusion:
        // The fusion root drives its ranking leaves itself; they are never
        // lowered on their own.
        return PhysicalOpPtr(std::make_unique<PhysicalHybridSearch>(
            static_cast<const LogicalScoreFusion&>(*node), context_));
      case LogicalOpKind::kTextMatch:
      case LogicalOpKind::kVectorTopK:
        return Status::Internal(
            "hybrid ranking leaves only execute inside ScoreFusion");
    }
    return Status::Internal("unhandled logical operator");
  }

 private:
  /// Inserts a Gather exchange below order-insensitive pipeline breakers.
  /// Never used under Limit (early exit must stay streaming) or as a join
  /// child (would break the probe pipeline shape). Gather degenerates to
  /// a pass-through when the child is not an eligible pipeline, so
  /// wrapping is always safe.
  PhysicalOpPtr MaybeGather(PhysicalOpPtr op) {
    if (!options_.enable_parallel) return op;
    return std::make_unique<PhysicalGather>(std::move(op), context_);
  }

  Result<PhysicalOpPtr> LowerScan(const LogicalScan& scan) {
    const ExprPtr& pred = scan.pushed_predicate();
    // Index scan for equality predicates with an existing index.
    if (options_.enable_index_scan && pred != nullptr) {
      size_t key_column;
      Value key;
      if (FindIndexableEquality(pred, *scan.table(), scan.projection(),
                                &key_column, &key)) {
        return PhysicalOpPtr(std::make_unique<PhysicalIndexScan>(
            scan.table(), scan.projection(), key_column, std::move(key),
            pred, scan.schema(), context_));
      }
    }
    std::vector<ColumnRangeConstraint> ranges;
    bool use_zone_maps = false;
    if (options_.enable_zone_maps && scan.use_zone_maps() &&
        pred != nullptr) {
      ranges = ExtractRanges(pred, scan.projection());
      use_zone_maps = !ranges.empty();
    }
    return PhysicalOpPtr(std::make_unique<PhysicalScan>(
        scan.table(), scan.projection(), pred, std::move(ranges),
        use_zone_maps, scan.schema(), context_));
  }

  Result<PhysicalOpPtr> LowerJoin(const LogicalJoin& join) {
    AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr left, Lower(join.children()[0]));
    AGORA_ASSIGN_OR_RETURN(PhysicalOpPtr right, Lower(join.children()[1]));
    size_t left_arity = join.children()[0]->schema().num_fields();
    size_t total_arity = join.schema().num_fields();

    PhysicalJoinKind kind = PhysicalJoinKind::kInner;
    switch (join.join_kind()) {
      case LogicalJoin::Kind::kInner:
        kind = PhysicalJoinKind::kInner;
        break;
      case LogicalJoin::Kind::kLeft:
        kind = PhysicalJoinKind::kLeftOuter;
        break;
      case LogicalJoin::Kind::kCross:
        kind = PhysicalJoinKind::kCross;
        break;
    }

    // Split the condition into equi-key pairs and a residual.
    std::vector<ExprPtr> left_keys, right_keys, residual;
    if (options_.enable_hash_join && join.condition() != nullptr) {
      for (const ExprPtr& conjunct : SplitConjuncts(join.condition())) {
        bool is_key = false;
        if (conjunct->kind() == ExprKind::kComparison) {
          const auto* cmp =
              static_cast<const ComparisonExpr*>(conjunct.get());
          if (cmp->op() == CompareOp::kEq) {
            ExprPtr l = cmp->left(), r = cmp->right();
            if (RefsWithin(l, 0, left_arity) &&
                RefsWithin(r, left_arity, total_arity)) {
              // keep orientation
            } else if (RefsWithin(r, 0, left_arity) &&
                       RefsWithin(l, left_arity, total_arity)) {
              std::swap(l, r);
            } else {
              l = nullptr;
            }
            if (l != nullptr) {
              // Rebase the right-side key onto the right child's schema.
              ExprPtr rk = RemapColumns(
                  r, [left_arity](size_t i) { return i - left_arity; });
              // Hash equality requires identical key types: cast both
              // sides to the common numeric type when they differ.
              TypeId lt = l->result_type(), rt = rk->result_type();
              if (lt != rt) {
                TypeId common = CommonNumericType(lt, rt);
                if (common == TypeId::kInvalid) {
                  // Should not happen post-binding; treat as residual.
                  residual.push_back(conjunct);
                  continue;
                }
                if (lt != common) l = std::make_shared<CastExpr>(l, common);
                if (rt != common) {
                  rk = std::make_shared<CastExpr>(rk, common);
                }
              }
              left_keys.push_back(std::move(l));
              right_keys.push_back(std::move(rk));
              is_key = true;
            }
          }
        }
        if (!is_key) residual.push_back(conjunct);
      }
    }

    if (!left_keys.empty()) {
      // Left-outer joins with residual predicates would need deferred
      // NULL padding; fall back to nested loops for those.
      if (kind != PhysicalJoinKind::kLeftOuter || residual.empty()) {
        return PhysicalOpPtr(std::make_unique<PhysicalHashJoin>(
            std::move(left), std::move(right), std::move(left_keys),
            std::move(right_keys), CombineConjuncts(std::move(residual)),
            kind, context_));
      }
    }
    return PhysicalOpPtr(std::make_unique<PhysicalNestedLoopJoin>(
        std::move(left), std::move(right), join.condition(), kind,
        context_));
  }

  ExecContext* context_;
  PhysicalPlannerOptions options_;
};

}  // namespace

Result<PhysicalOpPtr> CreatePhysicalPlan(
    const LogicalOpPtr& plan, ExecContext* context,
    const PhysicalPlannerOptions& options) {
  // Configure the context's parallel section before lowering: eligibility
  // reads enable_parallel/parallel_min_rows only, so the thread count can
  // vary per query without changing plans or results.
  context->enable_parallel = options.enable_parallel;
  context->parallel_min_rows = options.parallel_min_rows;
  int workers = options.num_threads > 0
                    ? options.num_threads
                    : static_cast<int>(ThreadPool::DefaultThreadCount());
  if (workers < 1) workers = 1;
  context->num_workers = workers;
  context->pool =
      (options.enable_parallel && workers > 1) ? ThreadPool::Global()
                                               : nullptr;
  PlannerImpl planner(context, options);
  return planner.Lower(plan);
}

}  // namespace agora
