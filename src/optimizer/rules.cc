#include <algorithm>
#include <set>

#include "expr/expr_rewrite.h"
#include "optimizer/optimizer.h"

namespace agora {
namespace optimizer_internal {

namespace {

/// Rebuilds `node` with new children, preserving its own payload.
LogicalOpPtr WithChildren(const LogicalOpPtr& node,
                          std::vector<LogicalOpPtr> children) {
  switch (node->kind()) {
    case LogicalOpKind::kScan:
      return node;
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*node);
      return std::make_shared<LogicalFilter>(children[0], f.predicate());
    }
    case LogicalOpKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(*node);
      std::vector<std::string> names;
      for (const Field& field : p.schema().fields()) names.push_back(field.name);
      return std::make_shared<LogicalProject>(children[0], p.exprs(),
                                              std::move(names));
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*node);
      return std::make_shared<LogicalJoin>(j.join_kind(), children[0],
                                           children[1], j.condition());
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(*node);
      std::vector<std::string> group_names;
      for (size_t i = 0; i < a.group_by().size(); ++i) {
        group_names.push_back(a.schema().field(i).name);
      }
      return std::make_shared<LogicalAggregate>(children[0], a.group_by(),
                                                a.aggregates(),
                                                std::move(group_names));
    }
    case LogicalOpKind::kSort: {
      const auto& s = static_cast<const LogicalSort&>(*node);
      return std::make_shared<LogicalSort>(children[0], s.keys());
    }
    case LogicalOpKind::kLimit: {
      const auto& l = static_cast<const LogicalLimit&>(*node);
      return std::make_shared<LogicalLimit>(children[0], l.limit(),
                                            l.offset());
    }
    case LogicalOpKind::kDistinct:
      return std::make_shared<LogicalDistinct>(children[0]);
    case LogicalOpKind::kUnion:
      return std::make_shared<LogicalUnion>(std::move(children));
    case LogicalOpKind::kTextMatch:
    case LogicalOpKind::kVectorTopK:
    case LogicalOpKind::kScoreFusion:
      // Hybrid-search subtrees are opaque to the rewriting rules; the
      // dedicated strategy pass mutates them in place.
      return node;
  }
  return node;
}

}  // namespace

LogicalOpPtr FoldPlanConstants(const LogicalOpPtr& node) {
  std::vector<LogicalOpPtr> children;
  for (const auto& child : node->children()) {
    children.push_back(FoldPlanConstants(child));
  }
  switch (node->kind()) {
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*node);
      auto rebuilt = std::make_shared<LogicalFilter>(
          children[0], FoldConstants(f.predicate()));
      return rebuilt;
    }
    case LogicalOpKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(*node);
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (size_t i = 0; i < p.exprs().size(); ++i) {
        exprs.push_back(FoldConstants(p.exprs()[i]));
        names.push_back(p.schema().field(i).name);
      }
      return std::make_shared<LogicalProject>(children[0], std::move(exprs),
                                              std::move(names));
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*node);
      ExprPtr cond = j.condition() == nullptr ? nullptr
                                              : FoldConstants(j.condition());
      return std::make_shared<LogicalJoin>(j.join_kind(), children[0],
                                           children[1], std::move(cond));
    }
    default:
      return children.empty() ? node : WithChildren(node, std::move(children));
  }
}

LogicalOpPtr PushDownPredicates(const LogicalOpPtr& node,
                                std::vector<ExprPtr> inherited) {
  switch (node->kind()) {
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*node);
      for (ExprPtr& conjunct : SplitConjuncts(f.predicate())) {
        inherited.push_back(std::move(conjunct));
      }
      // The filter node dissolves; its conjuncts continue downward.
      return PushDownPredicates(f.children()[0], std::move(inherited));
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*node);
      size_t left_arity = j.children()[0]->schema().num_fields();
      size_t total = j.schema().num_fields();
      bool inner_like = j.join_kind() == LogicalJoin::Kind::kInner ||
                        j.join_kind() == LogicalJoin::Kind::kCross;

      std::vector<ExprPtr> pool = std::move(inherited);
      if (inner_like && j.condition() != nullptr) {
        for (ExprPtr& conjunct : SplitConjuncts(j.condition())) {
          pool.push_back(std::move(conjunct));
        }
      }

      std::vector<ExprPtr> left_preds, right_preds, stay;
      for (ExprPtr& p : pool) {
        if (RefsWithin(p, 0, left_arity)) {
          left_preds.push_back(std::move(p));
        } else if (RefsWithin(p, left_arity, total) && inner_like) {
          right_preds.push_back(RemapColumns(
              p, [left_arity](size_t i) { return i - left_arity; }));
        } else if (RefsWithin(p, left_arity, total) &&
                   j.join_kind() == LogicalJoin::Kind::kLeft) {
          // Right-side predicates cannot move below a left join (they
          // would drop NULL-padded rows differently); keep above.
          stay.push_back(std::move(p));
        } else {
          stay.push_back(std::move(p));
        }
      }

      LogicalOpPtr new_left =
          PushDownPredicates(j.children()[0], std::move(left_preds));
      LogicalOpPtr new_right =
          PushDownPredicates(j.children()[1], std::move(right_preds));

      if (inner_like) {
        // Conjuncts spanning both sides become the join condition; a cross
        // join acquiring a condition becomes an inner join.
        ExprPtr cond = CombineConjuncts(std::move(stay));
        LogicalJoin::Kind kind = cond == nullptr
                                     ? LogicalJoin::Kind::kCross
                                     : LogicalJoin::Kind::kInner;
        return std::make_shared<LogicalJoin>(kind, std::move(new_left),
                                             std::move(new_right),
                                             std::move(cond));
      }
      // Left join: condition stays; undistributed predicates re-filter
      // above the join.
      LogicalOpPtr rebuilt = std::make_shared<LogicalJoin>(
          j.join_kind(), std::move(new_left), std::move(new_right),
          j.condition());
      if (!stay.empty()) {
        rebuilt = std::make_shared<LogicalFilter>(
            std::move(rebuilt), CombineConjuncts(std::move(stay)));
      }
      return rebuilt;
    }
    case LogicalOpKind::kScan: {
      const auto& s = static_cast<const LogicalScan&>(*node);
      auto scan = std::make_shared<LogicalScan>(s.table(), s.alias());
      if (!s.projection().empty()) scan->SetProjection(s.projection());
      std::vector<ExprPtr> all = std::move(inherited);
      if (s.pushed_predicate() != nullptr) {
        for (ExprPtr& conjunct : SplitConjuncts(s.pushed_predicate())) {
          all.push_back(std::move(conjunct));
        }
      }
      scan->set_pushed_predicate(CombineConjuncts(std::move(all)));
      scan->set_use_zone_maps(s.use_zone_maps());
      return scan;
    }
    default: {
      // Opaque boundary (project/aggregate/sort/limit/distinct): recurse
      // with nothing, then re-apply the inherited predicates here.
      std::vector<LogicalOpPtr> children;
      for (const auto& child : node->children()) {
        children.push_back(PushDownPredicates(child, {}));
      }
      LogicalOpPtr rebuilt = WithChildren(node, std::move(children));
      if (!inherited.empty()) {
        rebuilt = std::make_shared<LogicalFilter>(
            std::move(rebuilt), CombineConjuncts(std::move(inherited)));
      }
      return rebuilt;
    }
  }
}

void FlagZoneMaps(const LogicalOpPtr& node) {
  if (node->kind() == LogicalOpKind::kScan) {
    auto& scan = static_cast<LogicalScan&>(*node);
    if (scan.pushed_predicate() != nullptr) scan.set_use_zone_maps(true);
    return;
  }
  for (const auto& child : node->children()) FlagZoneMaps(child);
}

namespace {

/// Result of pruning one subtree: the rebuilt node plus a mapping from old
/// output positions to new ones (-1 = dropped).
struct PruneResult {
  LogicalOpPtr node;
  std::vector<int> mapping;
};

using Required = std::set<size_t>;

void AddRefs(const ExprPtr& e, Required* req) {
  std::vector<size_t> refs;
  e->CollectColumnRefs(&refs);
  req->insert(refs.begin(), refs.end());
}

ExprPtr RemapByMapping(const ExprPtr& e, const std::vector<int>& mapping) {
  return RemapColumns(e, [&mapping](size_t i) {
    AGORA_CHECK(i < mapping.size() && mapping[i] >= 0)
        << "pruned column still referenced";
    return static_cast<size_t>(mapping[i]);
  });
}

PruneResult Prune(const LogicalOpPtr& node, const Required& required);

PruneResult PruneScan(const LogicalScan& scan, const Required& required) {
  Required needed = required;
  if (scan.pushed_predicate() != nullptr) {
    AddRefs(scan.pushed_predicate(), &needed);
  }
  size_t old_arity = scan.schema().num_fields();
  std::vector<int> mapping(old_arity, -1);
  std::vector<size_t> base_cols;
  for (size_t old_pos : needed) {
    if (old_pos >= old_arity) continue;
    mapping[old_pos] = static_cast<int>(base_cols.size());
    base_cols.push_back(scan.projection().empty()
                            ? old_pos
                            : scan.projection()[old_pos]);
  }
  if (base_cols.empty()) {
    // Keep at least one column so the row count survives.
    mapping[0] = 0;
    base_cols.push_back(scan.projection().empty() ? 0 : scan.projection()[0]);
  }
  auto rebuilt = std::make_shared<LogicalScan>(scan.table(), scan.alias());
  rebuilt->SetProjection(std::move(base_cols));
  if (scan.pushed_predicate() != nullptr) {
    rebuilt->set_pushed_predicate(
        RemapByMapping(scan.pushed_predicate(), mapping));
  }
  rebuilt->set_use_zone_maps(scan.use_zone_maps());
  return {std::move(rebuilt), std::move(mapping)};
}

PruneResult Prune(const LogicalOpPtr& node, const Required& required) {
  switch (node->kind()) {
    case LogicalOpKind::kScan:
      return PruneScan(static_cast<const LogicalScan&>(*node), required);
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(*node);
      Required child_req = required;
      AddRefs(f.predicate(), &child_req);
      PruneResult child = Prune(f.children()[0], child_req);
      ExprPtr pred = RemapByMapping(f.predicate(), child.mapping);
      return {std::make_shared<LogicalFilter>(child.node, std::move(pred)),
              child.mapping};
    }
    case LogicalOpKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(*node);
      Required child_req;
      std::vector<int> mapping(p.exprs().size(), -1);
      std::vector<size_t> kept;
      for (size_t i = 0; i < p.exprs().size(); ++i) {
        if (required.count(i) > 0) {
          mapping[i] = static_cast<int>(kept.size());
          kept.push_back(i);
          AddRefs(p.exprs()[i], &child_req);
        }
      }
      if (kept.empty() && !p.exprs().empty()) {
        mapping[0] = 0;
        kept.push_back(0);
        AddRefs(p.exprs()[0], &child_req);
      }
      PruneResult child = Prune(p.children()[0], child_req);
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (size_t i : kept) {
        exprs.push_back(RemapByMapping(p.exprs()[i], child.mapping));
        names.push_back(p.schema().field(i).name);
      }
      return {std::make_shared<LogicalProject>(child.node, std::move(exprs),
                                               std::move(names)),
              std::move(mapping)};
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(*node);
      size_t left_arity = j.children()[0]->schema().num_fields();
      size_t total = j.schema().num_fields();
      Required all = required;
      if (j.condition() != nullptr) AddRefs(j.condition(), &all);
      Required left_req, right_req;
      for (size_t i : all) {
        if (i < left_arity) {
          left_req.insert(i);
        } else if (i < total) {
          right_req.insert(i - left_arity);
        }
      }
      PruneResult left = Prune(j.children()[0], left_req);
      PruneResult right = Prune(j.children()[1], right_req);
      size_t new_left_arity = left.node->schema().num_fields();
      std::vector<int> mapping(total, -1);
      for (size_t i = 0; i < left_arity; ++i) mapping[i] = left.mapping[i];
      for (size_t i = left_arity; i < total; ++i) {
        int m = right.mapping[i - left_arity];
        mapping[i] = m < 0 ? -1 : m + static_cast<int>(new_left_arity);
      }
      ExprPtr cond = j.condition() == nullptr
                         ? nullptr
                         : RemapByMapping(j.condition(), mapping);
      return {std::make_shared<LogicalJoin>(j.join_kind(), left.node,
                                            right.node, std::move(cond)),
              std::move(mapping)};
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(*node);
      size_t ngroups = a.group_by().size();
      Required child_req;
      for (const ExprPtr& g : a.group_by()) AddRefs(g, &child_req);
      std::vector<int> mapping(ngroups + a.aggregates().size(), -1);
      // Group keys are always kept (they define the grouping).
      for (size_t i = 0; i < ngroups; ++i) mapping[i] = static_cast<int>(i);
      std::vector<size_t> kept_aggs;
      for (size_t i = 0; i < a.aggregates().size(); ++i) {
        if (required.count(ngroups + i) > 0) {
          mapping[ngroups + i] =
              static_cast<int>(ngroups + kept_aggs.size());
          kept_aggs.push_back(i);
          if (a.aggregates()[i].arg != nullptr) {
            AddRefs(a.aggregates()[i].arg, &child_req);
          }
        }
      }
      PruneResult child = Prune(a.children()[0], child_req);
      std::vector<ExprPtr> group_by;
      std::vector<std::string> group_names;
      for (size_t i = 0; i < ngroups; ++i) {
        group_by.push_back(RemapByMapping(a.group_by()[i], child.mapping));
        group_names.push_back(a.schema().field(i).name);
      }
      std::vector<AggregateSpec> aggs;
      for (size_t i : kept_aggs) {
        AggregateSpec spec = a.aggregates()[i];
        if (spec.arg != nullptr) {
          spec.arg = RemapByMapping(spec.arg, child.mapping);
        }
        aggs.push_back(std::move(spec));
      }
      return {std::make_shared<LogicalAggregate>(child.node,
                                                 std::move(group_by),
                                                 std::move(aggs),
                                                 std::move(group_names)),
              std::move(mapping)};
    }
    case LogicalOpKind::kSort: {
      const auto& s = static_cast<const LogicalSort&>(*node);
      Required child_req = required;
      for (const SortKey& k : s.keys()) AddRefs(k.expr, &child_req);
      PruneResult child = Prune(s.children()[0], child_req);
      std::vector<SortKey> keys;
      for (const SortKey& k : s.keys()) {
        keys.push_back(SortKey{RemapByMapping(k.expr, child.mapping),
                               k.descending});
      }
      return {std::make_shared<LogicalSort>(child.node, std::move(keys)),
              child.mapping};
    }
    case LogicalOpKind::kLimit: {
      const auto& l = static_cast<const LogicalLimit&>(*node);
      PruneResult child = Prune(l.children()[0], required);
      return {std::make_shared<LogicalLimit>(child.node, l.limit(),
                                             l.offset()),
              child.mapping};
    }
    case LogicalOpKind::kDistinct: {
      // DISTINCT deduplicates over all columns; dropping any would change
      // results, so require everything below.
      Required all;
      for (size_t i = 0; i < node->children()[0]->schema().num_fields();
           ++i) {
        all.insert(i);
      }
      PruneResult child = Prune(node->children()[0], all);
      return {std::make_shared<LogicalDistinct>(child.node), child.mapping};
    }
    case LogicalOpKind::kUnion: {
      // Children must keep identical schemas; prune nothing here.
      Required all;
      for (size_t i = 0; i < node->schema().num_fields(); ++i) {
        all.insert(i);
      }
      std::vector<LogicalOpPtr> children;
      std::vector<int> mapping;
      for (const auto& c : node->children()) {
        PruneResult pruned = Prune(c, all);
        children.push_back(pruned.node);
        mapping = pruned.mapping;
      }
      return {std::make_shared<LogicalUnion>(std::move(children)), mapping};
    }
    case LogicalOpKind::kTextMatch:
    case LogicalOpKind::kVectorTopK:
    case LogicalOpKind::kScoreFusion: {
      // Hybrid operators produce a fixed schema (rowid + attrs + scores);
      // keep every column and prune nothing inside.
      std::vector<int> mapping(node->schema().num_fields());
      for (size_t i = 0; i < mapping.size(); ++i) {
        mapping[i] = static_cast<int>(i);
      }
      return {node, std::move(mapping)};
    }
  }
  AGORA_CHECK(false) << "unhandled node in Prune";
  return {node, {}};
}

}  // namespace

LogicalOpPtr PruneColumns(const LogicalOpPtr& root) {
  Required all;
  for (size_t i = 0; i < root->schema().num_fields(); ++i) all.insert(i);
  PruneResult result = Prune(root, all);
  // The root keeps all columns by construction, so the plan's output
  // schema is unchanged.
  return result.node;
}

}  // namespace optimizer_internal
}  // namespace agora
