// Data-prep pipeline example: cleaning a synthetic web-crawl corpus for
// "LLM training", then letting the pipeline optimizer reorder the stages
// the way a query optimizer orders predicates.
//
// Mirrors the panel's Alibaba/QWEN anecdote: applying query optimization
// principles to an AI data pipeline "significantly reducing costs".

#include <cstdio>

#include "pipeline/pipeline.h"
#include "pipeline/stages.h"

int main() {
  using namespace agora;

  // 20k crawl documents, ~30% worth keeping.
  std::vector<PipelineDoc> corpus = MakeSyntheticCorpus(20000, 7, 0.3);

  // The pipeline as a non-database engineer might write it: dedup
  // everything first, clean afterwards.
  Pipeline naive;
  naive.AddStage(std::make_shared<NearDedupFilter>(32, 4));
  naive.AddStage(std::make_shared<QualityFilter>());
  naive.AddStage(std::make_shared<ExactDedupFilter>());
  naive.AddStage(std::make_shared<AsciiLanguageFilter>());
  naive.AddStage(std::make_shared<LengthFilter>(10, 100000));
  naive.AddStage(std::make_shared<PiiScrubTransform>());
  naive.AddStage(std::make_shared<TokenizeCostTransform>(4));

  PipelineRunStats naive_stats;
  auto naive_out = naive.Run(corpus, &naive_stats);
  std::printf("Naive order:     %s\n", naive.ToString().c_str());
  std::printf("%s\n", naive_stats.ToString().c_str());

  // The optimizer samples the corpus, measures each stage's cost and
  // selectivity, and reorders filters by rank (cheap+selective first).
  PipelineOptimizer optimizer;
  Pipeline optimized = optimizer.Optimize(naive, corpus);
  std::printf("Optimized order: %s\n", optimized.ToString().c_str());
  std::printf("Calibrated estimates (cost ns/doc, selectivity):\n");
  for (const auto& est : optimizer.last_estimates()) {
    std::printf("  %-16s %10.0f  %.3f\n", est.name.c_str(), est.unit_cost,
                est.selectivity);
  }

  PipelineRunStats optimized_stats;
  auto optimized_out = optimized.Run(corpus, &optimized_stats);
  std::printf("\n%s\n", optimized_stats.ToString().c_str());

  std::printf(
      "Same %zu survivors; total work dropped from %llu to %llu units "
      "(%.2fx).\n",
      optimized_out.size(),
      static_cast<unsigned long long>(naive_stats.total_work),
      static_cast<unsigned long long>(optimized_stats.total_work),
      static_cast<double>(naive_stats.total_work) /
          static_cast<double>(optimized_stats.total_work));
  return naive_out.size() == optimized_out.size() ? 0 : 1;
}
