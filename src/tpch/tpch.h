#ifndef AGORA_TPCH_TPCH_H_
#define AGORA_TPCH_TPCH_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/catalog.h"

namespace agora {

/// Options for the TPC-H-style data generator.
///
/// This is a faithful *structural* clone of TPC-H dbgen — the same eight
/// tables, key relationships and official cardinality ratios — with
/// simplified value distributions (uniform dates, synthetic comments).
/// Absolute numbers therefore differ from pgbench-grade dbgen output, but
/// query plans and relative costs behave the same way, which is what the
/// "small data" experiment (E1) measures.
struct TpchOptions {
  /// Official SF=1 is ~6M lineitem rows; 0.01 ≈ 60k lineitems.
  double scale_factor = 0.01;
  uint64_t seed = 19940101;
};

/// Generates all eight TPC-H tables at `options.scale_factor` and
/// registers them in `catalog` (region, nation, supplier, customer, part,
/// partsupp, orders, lineitem).
Status GenerateTpch(const TpchOptions& options, Catalog* catalog);

/// Number of orders/lineitems etc. produced at a scale factor (for bench
/// reporting).
int64_t TpchRowsAtScale(const std::string& table, double scale_factor);

/// TPC-H query texts (parameters fixed to the spec's validation values)
/// expressed in the engine's SQL dialect.
std::string TpchQ1();   // pricing summary report
std::string TpchQ3();   // shipping priority
std::string TpchQ5();   // local supplier volume (6-way join)
std::string TpchQ6();   // forecasting revenue change
std::string TpchQ10();  // returned item reporting (top 20 customers)
std::string TpchQ12();  // shipping modes and order priority (CASE aggs)
std::string TpchQ14();  // promotion effect (ratio of aggregates)

}  // namespace agora

#endif  // AGORA_TPCH_TPCH_H_
