#ifndef AGORA_COMMON_THREAD_ANNOTATIONS_H_
#define AGORA_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (AGORA_GUARDED_BY and
// friends). Annotating which mutex guards which member turns the lock
// discipline into a compile-time invariant: the `-Wthread-safety` CI leg
// (see CMake option AGORA_THREAD_SAFETY and docs/ANALYSIS.md,
// "Compile-time lock discipline") rejects any access to a guarded member
// without the right capability held, on every build, for every
// interleaving — not just the schedules TSan happens to observe.
//
// Conventions:
//  - Every mutex member in src/ is either referenced by at least one
//    AGORA_GUARDED_BY / AGORA_ACQUIRE annotation or carries an
//    `// agora-lint: allow(unannotated-mutex) <reason>` (enforced by
//    scripts/agora_lint.py).
//  - Lock and unlock through the RAII guards in common/mutex.h
//    (MutexLock / ReaderMutexLock / WriterMutexLock); bare
//    `.lock()`/`.unlock()` calls are lint-banned in src/
//    (`manual-lock-unlock`).
//  - Private helpers that expect the caller to hold a lock say so with
//    AGORA_REQUIRES instead of a comment.
//
// On GCC (and any non-clang compiler) every macro expands to nothing, so
// the tier-1 GCC build is untouched; tests/test_thread_annotations.cc
// asserts that expansion stays empty.

#if defined(__clang__)
#define AGORA_TS_ATTR_(x) __attribute__((x))
#else
#define AGORA_TS_ATTR_(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability (mutexes, locks). `x` names the
/// capability kind in diagnostics, e.g. "mutex".
#define AGORA_CAPABILITY(x) AGORA_TS_ATTR_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability.
#define AGORA_SCOPED_CAPABILITY AGORA_TS_ATTR_(scoped_lockable)

/// Data member readable only with `x` held (shared or exclusive) and
/// writable only with `x` held exclusively.
#define AGORA_GUARDED_BY(x) AGORA_TS_ATTR_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define AGORA_PT_GUARDED_BY(x) AGORA_TS_ATTR_(pt_guarded_by(x))

/// Documents (and checks) lock acquisition order between two mutexes.
#define AGORA_ACQUIRED_BEFORE(...) AGORA_TS_ATTR_(acquired_before(__VA_ARGS__))
#define AGORA_ACQUIRED_AFTER(...) AGORA_TS_ATTR_(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held (exclusively / shared) on
/// entry, and does not release it.
#define AGORA_REQUIRES(...) AGORA_TS_ATTR_(requires_capability(__VA_ARGS__))
#define AGORA_REQUIRES_SHARED(...) \
  AGORA_TS_ATTR_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it
/// past return.
#define AGORA_ACQUIRE(...) AGORA_TS_ATTR_(acquire_capability(__VA_ARGS__))
#define AGORA_ACQUIRE_SHARED(...) \
  AGORA_TS_ATTR_(acquire_shared_capability(__VA_ARGS__))

/// Function releases a held capability. _GENERIC releases whichever mode
/// (shared or exclusive) is currently held — for guards usable in both.
#define AGORA_RELEASE(...) AGORA_TS_ATTR_(release_capability(__VA_ARGS__))
#define AGORA_RELEASE_SHARED(...) \
  AGORA_TS_ATTR_(release_shared_capability(__VA_ARGS__))
#define AGORA_RELEASE_GENERIC(...) \
  AGORA_TS_ATTR_(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns `b`.
#define AGORA_TRY_ACQUIRE(b, ...) \
  AGORA_TS_ATTR_(try_acquire_capability(b, __VA_ARGS__))
#define AGORA_TRY_ACQUIRE_SHARED(b, ...) \
  AGORA_TS_ATTR_(try_acquire_shared_capability(b, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard
/// for non-reentrant locks).
#define AGORA_EXCLUDES(...) AGORA_TS_ATTR_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability;
/// teaches the analysis about invariants it cannot derive.
#define AGORA_ASSERT_CAPABILITY(x) AGORA_TS_ATTR_(assert_capability(x))
#define AGORA_ASSERT_SHARED_CAPABILITY(x) \
  AGORA_TS_ATTR_(assert_shared_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define AGORA_RETURN_CAPABILITY(x) AGORA_TS_ATTR_(lock_returned(x))

/// Turns the analysis off for one function. Last resort — prefer precise
/// annotations. Use AGORA_TS_SUPPRESS so the waiver carries its reason.
#define AGORA_NO_THREAD_SAFETY_ANALYSIS \
  AGORA_TS_ATTR_(no_thread_safety_analysis)

/// Suppression that forces a written justification at the site:
///   int Frob() AGORA_TS_SUPPRESS("init-time only; no concurrent access");
/// The string is compiled away; the policy (docs/ANALYSIS.md) is that
/// blanket suppressions without a reason do not pass review.
#define AGORA_TS_SUPPRESS(reason) AGORA_NO_THREAD_SAFETY_ANALYSIS

#endif  // AGORA_COMMON_THREAD_ANNOTATIONS_H_
