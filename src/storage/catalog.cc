#include "storage/catalog.h"

#include "common/string_util.h"

namespace agora {

Result<std::shared_ptr<Table>> Catalog::CreateTable(const std::string& name,
                                                    Schema schema) {
  std::string key = ToLower(name);
  WriterMutexLock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_shared<Table>(name, std::move(schema));
  tables_.emplace(std::move(key), table);
  return table;
}

Status Catalog::RegisterTable(std::shared_ptr<Table> table) {
  std::string key = ToLower(table->name());
  WriterMutexLock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already exists");
  }
  tables_.emplace(std::move(key), std::move(table));
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  std::string key = ToLower(name);
  ReaderMutexLock lock(mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::string key = ToLower(name);
  ReaderMutexLock lock(mu_);
  return tables_.count(key) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  WriterMutexLock lock(mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  search_indexes_.erase(key);
  return Status::OK();
}

Status Catalog::AttachSearchIndexes(const std::string& table,
                                    TableSearchIndexes indexes) {
  std::string key = ToLower(table);
  WriterMutexLock lock(mu_);
  if (tables_.count(key) == 0) {
    return Status::NotFound("table '" + table + "' does not exist");
  }
  search_indexes_[std::move(key)] =
      std::make_shared<const TableSearchIndexes>(std::move(indexes));
  return Status::OK();
}

std::shared_ptr<const TableSearchIndexes> Catalog::GetSearchIndexes(
    const std::string& table) const {
  std::string key = ToLower(table);
  ReaderMutexLock lock(mu_);
  auto it = search_indexes_.find(key);
  return it == search_indexes_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

size_t Catalog::num_tables() const {
  ReaderMutexLock lock(mu_);
  return tables_.size();
}

}  // namespace agora
