# Empty compiler generated dependencies file for bench_e2_orm_overhead.
# This may be replaced when dependencies are built.
