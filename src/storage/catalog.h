#ifndef AGORA_STORAGE_CATALOG_H_
#define AGORA_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "search/search_types.h"
#include "storage/table.h"

namespace agora {

/// Registry of tables by (lower-cased) name. Owned by the Database facade.
///
/// Concurrency: a reader/writer lock with snapshot semantics. Lookups
/// (GetTable, GetSearchIndexes, ...) take the shared side and hand back
/// shared_ptr handles, so a query that resolved its tables keeps them
/// alive even when a concurrent DROP TABLE removes the catalog entry —
/// the query finishes on its snapshot and the table is freed when the
/// last handle drops. DDL (CreateTable, DropTable, AttachSearchIndexes)
/// takes the exclusive side. This makes the *name registry* safe under
/// concurrent readers; mutating a table's *data* in place (INSERT/
/// UPDATE/DELETE/COPY) still needs exclusive access at a higher level —
/// see the Database class comment for the full statement-level contract.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Fails with AlreadyExists on name collision.
  Result<std::shared_ptr<Table>> CreateTable(const std::string& name,
                                             Schema schema);

  /// Registers an externally-built table (e.g. the TPC-H generator output).
  Status RegisterTable(std::shared_ptr<Table> table);

  /// Looks up a table; NotFound if absent. The returned handle is a
  /// snapshot: it stays valid across a concurrent DropTable.
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Names of all registered tables (unordered).
  std::vector<std::string> TableNames() const;

  size_t num_tables() const;

  /// Attaches hybrid-search access paths (inverted/vector indexes) to a
  /// registered table, enabling MATCH()/KNN() in SQL over it. The index
  /// objects stay owned by the caller and must outlive the attachment.
  /// Overwrites any previous attachment; NotFound if the table is absent.
  Status AttachSearchIndexes(const std::string& table,
                             TableSearchIndexes indexes);

  /// Search access paths for `table`; null when none are attached. Like
  /// GetTable, the handle is a snapshot that outlives a concurrent
  /// re-attachment or DropTable.
  std::shared_ptr<const TableSearchIndexes> GetSearchIndexes(
      const std::string& table) const;

 private:
  mutable SharedMutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Table>> tables_
      AGORA_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::shared_ptr<const TableSearchIndexes>>
      search_indexes_ AGORA_GUARDED_BY(mu_);
};

}  // namespace agora

#endif  // AGORA_STORAGE_CATALOG_H_
