#ifndef AGORA_STORAGE_TABLE_H_
#define AGORA_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/chunk.h"
#include "storage/column_vector.h"
#include "types/schema.h"

namespace agora {

/// Per-block min/max statistics over a numeric column; blocks are
/// kChunkSize rows. NULL-only blocks have has_values == false.
struct ZoneMapEntry {
  double min = 0;
  double max = 0;
  bool has_values = false;
};

/// Zone map for one column: one entry per kChunkSize-row block.
struct ZoneMap {
  std::vector<ZoneMapEntry> blocks;

  /// True if the block may contain a value in [lo, hi].
  bool BlockMayMatch(size_t block, double lo, double hi) const {
    const ZoneMapEntry& e = blocks[block];
    if (!e.has_values) return false;
    return e.max >= lo && e.min <= hi;
  }
};

/// All of one table's zone maps, keyed by column index. Published as an
/// immutable shared_ptr snapshot so scans can keep pruning against the
/// set they opened with while a concurrent rebuild swaps in a new one.
using ZoneMapSet = std::unordered_map<size_t, ZoneMap>;

/// Secondary hash index mapping a column's value hash to row ids.
/// Collisions are resolved by re-checking the stored value on probe.
class HashIndex {
 public:
  HashIndex(std::string name, size_t column) : name_(std::move(name)), column_(column) {}

  const std::string& name() const { return name_; }
  size_t column() const { return column_; }

  void Insert(uint64_t hash, int64_t row_id) {
    map_.emplace(hash, row_id);
  }

  /// All candidate row ids whose key hash equals `hash` (callers must
  /// verify equality on the actual column value).
  std::vector<int64_t> Probe(uint64_t hash) const {
    std::vector<int64_t> out;
    auto range = map_.equal_range(hash);
    for (auto it = range.first; it != range.second; ++it) {
      out.push_back(it->second);
    }
    return out;
  }

  size_t size() const { return map_.size(); }

 private:
  std::string name_;
  size_t column_;
  std::unordered_multimap<uint64_t, int64_t> map_;
};

/// An in-memory columnar table: one ColumnVector per field plus optional
/// zone maps and secondary indexes. Append-only; row ids are positions.
///
/// Concurrency: concurrent readers (GetChunk/GetChunkView/GetRow/
/// GetHashIndex/zone_maps) are safe with each other and with
/// BuildHashIndex/BuildZoneMaps — the derived-structure registries are
/// internally locked and hand out shared_ptr snapshots, so a SELECT
/// racing CREATE INDEX (or a sibling scan's lazy zone-map build) either
/// probes the old structure or the new one, never a torn one. Mutating
/// table *data* (AppendRow/AppendChunk/RetainRows/SetCell) is NOT safe
/// under concurrent readers; the engine's writer lock provides that
/// exclusion (see the Database class comment).
class Table {
 public:
  Table(std::string name, Schema schema);

  /// Process-unique id assigned at construction and never reused, even
  /// after the table is dropped and its memory recycled. Caches that
  /// outlive a DROP TABLE (e.g. the optimizer's StatsCache) key on this
  /// instead of the heap address, which a successor table may reuse.
  uint64_t id() const { return id_; }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const ColumnVector& column(size_t i) const { return columns_[i]; }

  /// Appends one row; invalidates zone maps and indexes built earlier.
  Status AppendRow(const std::vector<Value>& row);

  /// Appends all rows of `chunk` (column types must match the schema).
  Status AppendChunk(const Chunk& chunk);

  /// Keeps only the rows listed in `keep` (ascending row ids); everything
  /// else is deleted. Invalidates zone maps and indexes.
  Status RetainRows(const std::vector<uint32_t>& keep);

  /// Overwrites one cell (coercing `v` to the column type). Invalidates
  /// zone maps and indexes.
  Status SetCell(size_t row, size_t column, const Value& v);

  /// Materializes rows [start, start+count) as a Chunk, optionally
  /// projecting a subset of columns (empty = all, in schema order).
  Chunk GetChunk(size_t start, size_t count,
                 const std::vector<size_t>& projection = {}) const;

  /// Zero-copy view of the whole table as one Chunk: columns share the
  /// table's buffers (copy-on-write protects readers from later table
  /// mutations). Used by the fused scan-filter path, which refines a
  /// selection over the view and gathers surviving rows once per block.
  Chunk GetChunkView(const std::vector<size_t>& projection = {}) const;

  /// Boxes one row (slow path).
  std::vector<Value> GetRow(size_t row) const;

  // -- Physical design knobs (E4) ---------------------------------------

  /// Builds per-block min/max zone maps for every numeric column. Safe
  /// under concurrent readers: the set is built off to the side and
  /// swapped in under the derived-structure lock (two scans lazily
  /// building at once produce identical sets; last swap wins).
  void BuildZoneMaps();
  bool HasZoneMaps() const;
  /// Snapshot of all zone maps (nullptr if never built / invalidated).
  /// The snapshot stays valid — pruning against the state it was built
  /// from — even if the maps are concurrently rebuilt or invalidated.
  std::shared_ptr<const ZoneMapSet> zone_maps() const;
  /// Zone map for `column`, or nullptr if absent / non-numeric. The
  /// handle aliases the snapshot, so it outlives concurrent rebuilds.
  std::shared_ptr<const ZoneMap> GetZoneMap(size_t column) const;

  /// Builds (or rebuilds) a hash index named `index_name` on `column`.
  /// Safe under concurrent readers: the new index is built off to the
  /// side and swapped into the registry under the index lock.
  Status BuildHashIndex(const std::string& index_name, size_t column);
  /// Snapshot handle to the index on `column`, or nullptr. The handle
  /// stays valid (probing the state it was built from) even if the index
  /// is concurrently rebuilt or invalidated.
  std::shared_ptr<const HashIndex> GetHashIndex(size_t column) const;

  /// Returns a copy of this table physically sorted by `column` ascending
  /// (NULLs first). Demonstrates physical/logical independence: same schema
  /// and contents, different layout.
  std::shared_ptr<Table> SortedCopy(const std::string& new_name,
                                    size_t column) const;

  size_t MemoryBytes() const;

 private:
  uint64_t id_;
  std::string name_;
  Schema schema_;
  std::vector<ColumnVector> columns_;
  size_t num_rows_ = 0;

  /// Drops derived structures after a data mutation (caller holds writer
  /// exclusion for the data; the index registry still locks internally so
  /// concurrent snapshot holders stay safe).
  void InvalidateDerived();

  // Derived structures: guarded by index_mu_ so lookups can race
  // rebuilds; everything handed out is a shared_ptr snapshot.
  mutable Mutex index_mu_;
  // Null until built.
  std::shared_ptr<const ZoneMapSet> zone_maps_ AGORA_GUARDED_BY(index_mu_);
  std::vector<std::shared_ptr<HashIndex>> indexes_
      AGORA_GUARDED_BY(index_mu_);
};

}  // namespace agora

#endif  // AGORA_STORAGE_TABLE_H_
