file(REMOVE_RECURSE
  "CMakeFiles/analytics_tpch.dir/analytics_tpch.cpp.o"
  "CMakeFiles/analytics_tpch.dir/analytics_tpch.cpp.o.d"
  "analytics_tpch"
  "analytics_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
