// Analytics example: generate a TPC-H-style warehouse in memory and run
// the classic queries, printing plans and resource statistics — the
// "small data is enough" demo on your own machine.

#include <cstdio>

#include "common/timer.h"
#include "engine/database.h"
#include "tpch/tpch.h"

int main() {
  using namespace agora;
  Database db;
  TpchOptions options;
  options.scale_factor = 0.02;  // ~30k orders / ~120k lineitems
  std::printf("Generating TPC-H-style data at SF %.2f ...\n",
              options.scale_factor);
  Timer gen_timer;
  if (Status s = GenerateTpch(options, &db.catalog()); !s.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("done in %.2f s\n\n", gen_timer.ElapsedSeconds());

  struct NamedQuery {
    const char* name;
    std::string sql;
  };
  NamedQuery queries[] = {
      {"Q1 pricing summary", TpchQ1()},
      {"Q3 shipping priority", TpchQ3()},
      {"Q5 local supplier volume", TpchQ5()},
      {"Q6 forecast revenue", TpchQ6()},
  };

  for (const NamedQuery& q : queries) {
    Timer timer;
    auto result = db.Execute(q.sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.name,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s (%.1f ms) ===\n%s\n", q.name, timer.ElapsedMillis(),
                result->ToString(5).c_str());
    std::printf("stats: %s\n\n", result->stats().ToString().c_str());
  }

  // Peek at the optimizer's work on the 6-way join.
  auto plan = db.Explain(TpchQ5());
  std::printf("Q5 optimized plan (note: no cross products, small build "
              "sides):\n%s\n", plan->c_str());
  return 0;
}
