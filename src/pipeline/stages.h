#ifndef AGORA_PIPELINE_STAGES_H_
#define AGORA_PIPELINE_STAGES_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pipeline/pipeline.h"

namespace agora {

/// Drops documents whose word count is outside [min_words, max_words].
/// Very cheap; selectivity depends on the corpus length distribution.
class LengthFilter : public PipelineStage {
 public:
  LengthFilter(size_t min_words, size_t max_words)
      : min_words_(min_words), max_words_(max_words) {}
  std::string name() const override { return "length_filter"; }
  bool is_filter() const override { return true; }
  bool Process(PipelineDoc* doc, uint64_t* work) override;

 private:
  size_t min_words_;
  size_t max_words_;
};

/// Drops documents whose non-ASCII character fraction exceeds the
/// threshold (a cheap stand-in for language identification).
class AsciiLanguageFilter : public PipelineStage {
 public:
  explicit AsciiLanguageFilter(double max_non_ascii_fraction = 0.2)
      : threshold_(max_non_ascii_fraction) {}
  std::string name() const override { return "language_filter"; }
  bool is_filter() const override { return true; }
  bool Process(PipelineDoc* doc, uint64_t* work) override;

 private:
  double threshold_;
};

/// Drops low-quality documents by repeated-word ratio: if the most
/// frequent word accounts for more than `max_top_word_fraction` of the
/// document, it is considered spammy boilerplate. Moderately expensive
/// (full tokenization + frequency map).
class QualityFilter : public PipelineStage {
 public:
  explicit QualityFilter(double max_top_word_fraction = 0.2)
      : threshold_(max_top_word_fraction) {}
  std::string name() const override { return "quality_filter"; }
  bool is_filter() const override { return true; }
  bool Process(PipelineDoc* doc, uint64_t* work) override;

 private:
  double threshold_;
};

/// Drops exact duplicates (previously seen identical text). Stateful
/// within one run; Reset() clears the seen-set.
class ExactDedupFilter : public PipelineStage {
 public:
  std::string name() const override { return "exact_dedup"; }
  bool is_filter() const override { return true; }
  bool Process(PipelineDoc* doc, uint64_t* work) override;
  void Reset() override { seen_.clear(); }

 private:
  std::unordered_set<uint64_t> seen_;
};

/// Drops near-duplicates via MinHash over word 3-shingles: `hashes`
/// permutations grouped into `bands`; a document is a near-duplicate when
/// any band signature was seen before. Expensive (shingling + multiple
/// hash passes) — exactly the stage you want to run on as few documents
/// as possible.
class NearDedupFilter : public PipelineStage {
 public:
  NearDedupFilter(size_t hashes = 16, size_t bands = 4)
      : num_hashes_(hashes), num_bands_(bands) {}
  std::string name() const override { return "near_dedup"; }
  bool is_filter() const override { return true; }
  bool Process(PipelineDoc* doc, uint64_t* work) override;
  void Reset() override { band_seen_.clear(); }

 private:
  size_t num_hashes_;
  size_t num_bands_;
  std::unordered_set<uint64_t> band_seen_;
};

/// Transform: masks digit runs of 6+ characters (a toy PII scrubber).
/// Mutates text, so it is a reordering barrier.
class PiiScrubTransform : public PipelineStage {
 public:
  std::string name() const override { return "pii_scrub"; }
  bool is_filter() const override { return false; }
  bool Process(PipelineDoc* doc, uint64_t* work) override;
};

/// Terminal transform standing in for tokenization + training-cost
/// accounting: runs a deliberately heavy rolling-hash pass over the text
/// (the per-surviving-document cost that dominates an LLM data pipeline)
/// and accumulates a token count.
class TokenizeCostTransform : public PipelineStage {
 public:
  explicit TokenizeCostTransform(int rounds = 16) : rounds_(rounds) {}
  std::string name() const override { return "tokenize"; }
  bool is_filter() const override { return false; }
  bool Process(PipelineDoc* doc, uint64_t* work) override;
  void Reset() override { total_tokens_ = 0; }

  /// Tokens counted across the last run.
  uint64_t total_tokens() const { return total_tokens_; }

 private:
  int rounds_;
  uint64_t total_tokens_ = 0;
};

/// Synthetic web-crawl-like corpus for E5: `n` documents where
/// `normal_fraction` are clean text and the remainder splits evenly into
/// exact duplicates, near duplicates, spammy repeated-word documents,
/// non-ASCII documents and too-short fragments. Deterministic in `seed`.
std::vector<PipelineDoc> MakeSyntheticCorpus(size_t n, uint64_t seed = 7,
                                             double normal_fraction = 0.5);

}  // namespace agora

#endif  // AGORA_PIPELINE_STAGES_H_
