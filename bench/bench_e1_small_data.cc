// E1 — "small data is enough": a single core runs TPC-H-class analytics
// comfortably; latency scales ~linearly with scale factor.
//
// Paper quote (SIGMOD'25 panel, §3.3.1): "a MacBook can comfortably run
// TPC-H scale factor 1000: 'small data' is enough for most applications".
//
// We sweep the scale factor and run Q1/Q3/Q5/Q6 on one core, then print a
// per-query rows/sec figure and the implied single-core time at SF 1000.
// A second dimension sweeps the morsel-execution worker count (--threads,
// default 1,2,4,8) and lands the scaling curve in BENCH_e1.json; results
// are byte-identical at every thread count, only latency moves.

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace agora {
namespace {

using bench::GetTpchDatabase;
using bench::MustExecute;

// Engine-wide memory budget for the measured databases (bytes; 0 =
// unlimited). Set by --mem-budget=; under a budget the blocking
// operators run the spill-capable path, so the sweep measures the cost
// of governed execution at identical results.
int64_t g_mem_budget = 0;

/// Parses "64m"-style byte sizes (optional k/m/g suffix, powers of 1024).
int64_t ParseByteSize(const char* text) {
  char* end = nullptr;
  long long value = std::strtoll(text, &end, 10);
  if (end == text || value < 0) return 0;
  int64_t scale = 1;
  if (*end == 'k' || *end == 'K') scale = int64_t{1} << 10;
  if (*end == 'm' || *end == 'M') scale = int64_t{1} << 20;
  if (*end == 'g' || *end == 'G') scale = int64_t{1} << 30;
  return static_cast<int64_t>(value) * scale;
}

const char* QueryName(int q) {
  switch (q) {
    case 1:
      return "Q1";
    case 3:
      return "Q3";
    case 5:
      return "Q5";
    case 6:
      return "Q6";
    case 10:
      return "Q10";
    case 12:
      return "Q12";
    default:
      return "Q14";
  }
}

std::string QuerySql(int q) {
  switch (q) {
    case 1:
      return TpchQ1();
    case 3:
      return TpchQ3();
    case 5:
      return TpchQ5();
    case 6:
      return TpchQ6();
    case 10:
      return TpchQ10();
    case 12:
      return TpchQ12();
    default:
      return TpchQ14();
  }
}

// Args: {query number, scale factor * 1000, worker threads}.
void BM_TpchQuery(benchmark::State& state) {
  int query = static_cast<int>(state.range(0));
  double sf = static_cast<double>(state.range(1)) / 1000.0;
  int threads = static_cast<int>(state.range(2));
  Database* db = GetTpchDatabase(sf);
  db->set_memory_budget(g_mem_budget);
  db->set_execution_threads(threads);
  auto lineitem = db->catalog().GetTable("lineitem");
  int64_t lineitem_rows =
      lineitem.ok() ? static_cast<int64_t>((*lineitem)->num_rows()) : 0;

  std::string sql = QuerySql(query);
  int64_t result_rows = 0;
  for (auto _ : state) {
    QueryResult result = MustExecute(db, sql);
    result_rows = static_cast<int64_t>(result.num_rows());
    benchmark::DoNotOptimize(result_rows);
  }
  db->set_execution_threads(0);
  state.counters["sf"] = sf;
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["lineitem_rows"] = static_cast<double>(lineitem_rows);
  state.counters["result_rows"] = static_cast<double>(result_rows);
  // Lineitems processed per second at this scale (headline metric);
  // scaled by iterations so the rate is per-iteration-correct.
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(lineitem_rows) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(QueryName(query)) + "/t" +
                 std::to_string(threads));
}

BENCHMARK(BM_TpchQuery)
    ->ArgsProduct({{1, 3, 5, 6, 10, 12, 14}, {10, 20, 50, 100}, {1, 4}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

/// Median-of-k wall-clock latency for one query at one worker count.
double MeasureLatencyMs(Database* db, const std::string& sql, int threads) {
  db->set_execution_threads(threads);
  MustExecute(db, sql);  // warm-up (tables cached, pool spun up)
  std::vector<double> samples;
  for (int i = 0; i < 5; ++i) {
    Timer timer;
    MustExecute(db, sql);
    samples.push_back(timer.ElapsedSeconds() * 1000.0);
  }
  db->set_execution_threads(0);
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Hash-kernel and expression-engine health figures for one query, from
/// an instrumented run (see docs/BENCH_SCHEMA.md for the exact
/// definitions).
struct HashKernelStats {
  double ht_load_factor = 0.0;       // entries / slots
  double ht_probes_per_lookup = 0.0; // probe_steps / lookups
  double bloom_hit_rate = 0.0;       // filtered / checked
  int64_t expr_rows_evaluated = 0;   // rows through non-leaf expr kernels
  int64_t mem_bytes_reserved_peak = 0;  // query tracker high-water mark
  int64_t spill_partitions = 0;         // partitions parked on disk
  int64_t spill_bytes_written = 0;      // spill volume (write side)
};

HashKernelStats CollectHashStats(Database* db, const std::string& sql,
                                 int threads) {
  db->set_execution_threads(threads);
  QueryResult result = MustExecute(db, sql);
  db->set_execution_threads(0);
  const ExecStats& s = result.stats();
  HashKernelStats h;
  h.expr_rows_evaluated = s.expr_rows_evaluated;
  h.mem_bytes_reserved_peak = s.mem_bytes_reserved_peak;
  h.spill_partitions = s.spill_partitions;
  h.spill_bytes_written = s.spill_bytes_written;
  if (s.hash_table_slots > 0) {
    h.ht_load_factor = static_cast<double>(s.hash_table_entries) /
                       static_cast<double>(s.hash_table_slots);
  }
  if (s.hash_table_lookups > 0) {
    h.ht_probes_per_lookup = static_cast<double>(s.hash_table_probe_steps) /
                             static_cast<double>(s.hash_table_lookups);
  }
  if (s.bloom_checked_rows > 0) {
    h.bloom_hit_rate = static_cast<double>(s.bloom_filtered_rows) /
                       static_cast<double>(s.bloom_checked_rows);
  }
  return h;
}

/// Runs the query × scale × thread sweep and writes BENCH_e1.json.
void WriteScalingJson(const std::vector<int>& thread_counts,
                      const std::vector<double>& scales,
                      const std::vector<int>& queries) {
  const char* path = "BENCH_e1.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("[E1] cannot open %s for writing; skipping JSON\n", path);
    return;
  }

  std::fprintf(out, "{\n  \"experiment\": \"e1_small_data\",\n");
  std::fprintf(out, "  \"pool_threads\": %zu,\n",
               ThreadPool::Global()->size());
  std::fprintf(out, "  \"mem_budget_bytes\": %lld,\n",
               static_cast<long long>(g_mem_budget));
  std::fprintf(out, "  \"results\": [\n");
  bool first = true;
  for (double sf : scales) {
    Database* db = GetTpchDatabase(sf);
    db->set_memory_budget(g_mem_budget);
    for (int q : queries) {
      std::string sql = QuerySql(q);
      double base_ms = 0.0;
      for (int threads : thread_counts) {
        double ms = MeasureLatencyMs(db, sql, threads);
        if (threads == thread_counts.front()) base_ms = ms;
        HashKernelStats hs = CollectHashStats(db, sql, threads);
        // Expression throughput: kernel-rows per wall second. Counts
        // every row flowing through a non-leaf expression kernel, so a
        // selective fused filter (fewer kernel rows per scanned row)
        // and a faster engine both move it.
        double expr_mrows_per_s =
            ms > 0.0 ? static_cast<double>(hs.expr_rows_evaluated) /
                           (ms / 1000.0) / 1e6
                     : 0.0;
        if (threads == thread_counts.front()) {
          std::printf("[E1] expr throughput %s SF %g: %lld kernel rows, "
                      "%.1f Mrows/s\n",
                      QueryName(q), sf,
                      static_cast<long long>(hs.expr_rows_evaluated),
                      expr_mrows_per_s);
        }
        if (!first) std::fprintf(out, ",\n");
        first = false;
        std::fprintf(out,
                     "    {\"query\": \"%s\", \"scale_factor\": %g, "
                     "\"threads\": %d, \"latency_ms\": %.4f, "
                     "\"speedup_vs_1t\": %.3f, "
                     "\"ht_load_factor\": %.4f, "
                     "\"ht_probes_per_lookup\": %.4f, "
                     "\"bloom_hit_rate\": %.4f, "
                     "\"expr_rows_evaluated\": %lld, "
                     "\"expr_mrows_per_s\": %.2f, "
                     "\"mem_bytes_reserved_peak\": %lld, "
                     "\"spill_partitions\": %lld, "
                     "\"spill_bytes_written\": %lld}",
                     QueryName(q), sf, threads, ms,
                     ms > 0.0 ? base_ms / ms : 0.0, hs.ht_load_factor,
                     hs.ht_probes_per_lookup, hs.bloom_hit_rate,
                     static_cast<long long>(hs.expr_rows_evaluated),
                     expr_mrows_per_s,
                     static_cast<long long>(hs.mem_bytes_reserved_peak),
                     static_cast<long long>(hs.spill_partitions),
                     static_cast<long long>(hs.spill_bytes_written));
      }
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("[E1] thread-scaling sweep written to %s\n", path);
}

/// Smoke check for budgeted execution: measure Q5's unlimited peak,
/// rerun it with a quarter of that budget, and require identical row
/// counts with nonzero spill counters. Proves the spill path is alive
/// in CI without a separate binary.
void SmokeSpillCheck(double sf) {
  Database* db = GetTpchDatabase(sf);
  std::string sql = TpchQ5();
  db->set_memory_budget(0);
  QueryResult unlimited = MustExecute(db, sql);
  int64_t peak = unlimited.stats().mem_bytes_reserved_peak;
  int64_t budget = std::max<int64_t>(peak / 4, int64_t{1} << 16);
  db->set_memory_budget(budget);
  QueryResult budgeted = MustExecute(db, sql);
  db->set_memory_budget(g_mem_budget);
  const ExecStats& s = budgeted.stats();
  std::printf(
      "[E1] spill Q5 SF %g: budget=%lld peak=%lld partitions=%lld "
      "written=%lld read=%lld rows=%zu (unlimited rows=%zu)\n",
      sf, static_cast<long long>(budget), static_cast<long long>(peak),
      static_cast<long long>(s.spill_partitions),
      static_cast<long long>(s.spill_bytes_written),
      static_cast<long long>(s.spill_bytes_read), budgeted.num_rows(),
      unlimited.num_rows());
  if (budgeted.num_rows() != unlimited.num_rows()) {
    std::printf("[E1] spill FAILURE: budgeted row count diverged\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace agora

int main(int argc, char** argv) {
  // --threads=a,b,c selects the worker counts for the scaling sweep.
  // --sf=a,b,c selects the scale factors.
  // --mem-budget=N[k|m|g] runs the whole sweep under an engine memory
  // budget (spill-capable execution; results are identical, only
  // latency and the spill counters in BENCH_e1.json move).
  // --smoke shrinks the run to a CI-sized check: SF 0.01, Q1/Q3/Q5,
  // one thread, no gbench sweep — it exists to prove the binary runs,
  // BENCH_e1.json comes out well-formed, and the spill path is alive.
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<double> scales = {0.01, 0.05, 0.1};
  bool smoke = false;
  bool sf_set = false;
  bool threads_set = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const char* threads_prefix = "--threads=";
    const char* sf_prefix = "--sf=";
    const char* budget_prefix = "--mem-budget=";
    if (std::strncmp(argv[i], threads_prefix, std::strlen(threads_prefix)) ==
        0) {
      thread_counts.clear();
      for (const char* p = argv[i] + std::strlen(threads_prefix);
           *p != '\0';) {
        int n = std::atoi(p);
        if (n > 0) thread_counts.push_back(n);
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      if (thread_counts.empty()) thread_counts = {1};
      threads_set = true;
    } else if (std::strncmp(argv[i], sf_prefix, std::strlen(sf_prefix)) ==
               0) {
      scales.clear();
      sf_set = true;
      for (const char* p = argv[i] + std::strlen(sf_prefix); *p != '\0';) {
        double sf = std::atof(p);
        if (sf > 0.0) scales.push_back(sf);
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      if (scales.empty()) scales = {0.01};
    } else if (std::strncmp(argv[i], budget_prefix,
                            std::strlen(budget_prefix)) == 0) {
      agora::g_mem_budget =
          agora::ParseByteSize(argv[i] + std::strlen(budget_prefix));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out_argc++] = argv[i];  // pass everything else to gbench
    }
  }
  argc = out_argc;
  std::vector<int> queries = {1, 3, 5, 6, 10, 12, 14};
  if (smoke) {
    // CI-sized defaults; explicit --threads / --sf still win.
    if (!threads_set) thread_counts = {1};
    if (!sf_set) scales = {0.01};
    queries = {1, 3, 5};
  }
  // Size the shared pool for the largest requested sweep point unless the
  // user pinned it; must happen before the first query builds the pool.
  int max_threads = 1;
  for (int t : thread_counts) max_threads = std::max(max_threads, t);
  setenv("AGORA_THREADS", std::to_string(max_threads).c_str(), 0);

  agora::bench::PrintClaim(
      "E1: small data is enough (TPC-H on one core)",
      "\"a MacBook can comfortably run TPC-H scale factor 1000: 'small "
      "data' is enough\" (panel §3.3.1)",
      "latency grows ~linearly in SF; per-query Mrows/s stays roughly "
      "flat, so extrapolating any row to SF1000 (~6B lineitems) lands in "
      "minutes on one core — parallel morsel execution divides the "
      "single-core time by the scaling factor in BENCH_e1.json");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();

  agora::WriteScalingJson(thread_counts, scales, queries);

  if (smoke) {
    agora::SmokeSpillCheck(scales.front());
    std::printf("[E1] smoke run complete\n");
    benchmark::Shutdown();
    return 0;
  }

  // Post-run extrapolation using a quick Q6 measurement at SF 0.1.
  agora::Database* db = agora::bench::GetTpchDatabase(0.1);
  auto lineitem = db->catalog().GetTable("lineitem");
  double rows = static_cast<double>((*lineitem)->num_rows());
  db->set_execution_threads(1);
  agora::Timer timer;
  agora::bench::MustExecute(db, agora::TpchQ6());
  double seconds = timer.ElapsedSeconds();
  db->set_execution_threads(0);
  double rows_per_s = rows / seconds;
  double sf1000_rows = 6.0012e9;
  std::printf(
      "\n[E1 verdict] Q6 scans %.2f Mrows/s single-core; "
      "SF1000 (~6.0B lineitems) => ~%.1f minutes for a full Q6 scan on "
      "ONE core (parallelism divides this) — consistent with the claim.\n",
      rows_per_s / 1e6, sf1000_rows / rows_per_s / 60.0);
  benchmark::Shutdown();
  return 0;
}
