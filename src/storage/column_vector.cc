#include "storage/column_vector.h"

#include "common/hash.h"

namespace agora {
namespace {

/// Heap cost attributed to one element of a string column.
inline size_t StrCost(const std::string& s) {
  return sizeof(std::string) + s.capacity();
}

/// Reps refresh their tracker charge only when the payload drifted this
/// many bytes, so per-row appends pay a compare, not an atomic RMW.
constexpr size_t kChargeGranularity = 16 * 1024;

}  // namespace

ColumnVector::Rep::Rep(const Rep& other)
    : validity(other.validity),
      ints(other.ints),
      doubles(other.doubles),
      strings(other.strings) {
  // The copies' string capacities may differ from the source's, so the
  // incremental counter is recomputed rather than copied.
  for (const auto& s : strings) string_bytes += StrCost(s);
  Recharge();
}

void ColumnVector::Rep::Recharge() {
  if (charge.tracker() == nullptr) return;
  size_t now = validity.capacity() + ints.capacity() * sizeof(int64_t) +
               doubles.capacity() * sizeof(double) + string_bytes;
  size_t cur = charge.amount();
  if (now > cur + kChargeGranularity || now + kChargeGranularity < cur) {
    charge.Update(now);
  }
}

const std::vector<std::string>& ColumnVector::EmptyStrings() {
  static const std::vector<std::string> kEmpty;
  return kEmpty;
}

ColumnVector::Rep* ColumnVector::EnsureUnique() {
  if (!rep_) {
    rep_ = std::make_shared<Rep>();
  } else if (rep_.use_count() > 1) {
    rep_ = std::make_shared<Rep>(*rep_);
  }
  if (constant_) Flatten();
  return rep_.get();
}

ColumnVector ColumnVector::MakeConstant(TypeId type, const Value& v,
                                        size_t n) {
  ColumnVector out(type);
  out.AppendValue(v);
  out.constant_ = true;
  out.logical_size_ = n;
  return out;
}

void ColumnVector::Flatten() {
  if (!constant_) return;
  size_t n = logical_size_;
  auto flat = std::make_shared<Rep>();
  const Rep& one = *rep_;
  flat->validity.assign(n, one.validity[0]);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      flat->ints.assign(n, one.ints[0]);
      break;
    case TypeId::kDouble:
      flat->doubles.assign(n, one.doubles[0]);
      break;
    case TypeId::kString:
      flat->strings.assign(n, one.strings[0]);
      for (const auto& s : flat->strings) flat->string_bytes += StrCost(s);
      break;
    case TypeId::kInvalid:
      break;
  }
  flat->Recharge();
  rep_ = std::move(flat);
  constant_ = false;
  logical_size_ = 0;
}

void ColumnVector::Reserve(size_t n) {
  Rep* rep = EnsureUnique();
  rep->validity.reserve(n);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      rep->ints.reserve(n);
      break;
    case TypeId::kDouble:
      rep->doubles.reserve(n);
      break;
    case TypeId::kString:
      rep->strings.reserve(n);
      break;
    case TypeId::kInvalid:
      break;
  }
  rep->Recharge();
}

void ColumnVector::Clear() {
  rep_.reset();
  constant_ = false;
  logical_size_ = 0;
}

void ColumnVector::ResizeForOverwrite(size_t n) {
  // A shared rep is dropped rather than cloned: the contents are about to
  // be overwritten, so copying them would be pure waste.
  if (!rep_ || rep_.use_count() > 1) rep_ = std::make_shared<Rep>();
  constant_ = false;
  logical_size_ = 0;
  Rep* rep = rep_.get();
  rep->validity.resize(n);
  rep->ints.clear();
  rep->doubles.clear();
  rep->strings.clear();
  rep->string_bytes = 0;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      rep->ints.resize(n);
      break;
    case TypeId::kDouble:
      rep->doubles.resize(n);
      break;
    case TypeId::kString:
      rep->strings.resize(n);
      if (n != 0) rep->string_bytes = n * StrCost(rep->strings.front());
      break;
    case TypeId::kInvalid:
      break;
  }
  rep->Recharge();
}

void ColumnVector::AppendNull() {
  Rep* rep = EnsureUnique();
  rep->validity.push_back(0);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      rep->ints.push_back(0);
      break;
    case TypeId::kDouble:
      rep->doubles.push_back(0.0);
      break;
    case TypeId::kString:
      rep->strings.emplace_back();
      rep->string_bytes += StrCost(rep->strings.back());
      break;
    case TypeId::kInvalid:
      break;
  }
  rep->Recharge();
}

void ColumnVector::AppendInt64(int64_t v) {
  AGORA_DCHECK(type_ == TypeId::kInt64 || type_ == TypeId::kDate ||
               type_ == TypeId::kBool);
  Rep* rep = EnsureUnique();
  rep->validity.push_back(1);
  rep->ints.push_back(v);
  rep->Recharge();
}

void ColumnVector::AppendDouble(double v) {
  AGORA_DCHECK(type_ == TypeId::kDouble);
  Rep* rep = EnsureUnique();
  rep->validity.push_back(1);
  rep->doubles.push_back(v);
  rep->Recharge();
}

void ColumnVector::AppendString(std::string v) {
  AGORA_DCHECK(type_ == TypeId::kString);
  Rep* rep = EnsureUnique();
  rep->validity.push_back(1);
  rep->strings.push_back(std::move(v));
  rep->string_bytes += StrCost(rep->strings.back());
  rep->Recharge();
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      AppendBool(v.bool_value());
      break;
    case TypeId::kInt64:
    case TypeId::kDate:
      AppendInt64(v.int64_value());
      break;
    case TypeId::kDouble:
      AppendDouble(v.type() == TypeId::kDouble ? v.double_value()
                                               : v.AsDouble());
      break;
    case TypeId::kString:
      AppendString(v.string_value());
      break;
    case TypeId::kInvalid:
      AGORA_CHECK(false) << "append to invalid-typed column";
  }
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t row) {
  AGORA_DCHECK(type_ == other.type_);
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  size_t p = other.PhysRow(row);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      AppendInt64(other.rep_->ints[p]);
      break;
    case TypeId::kDouble:
      AppendDouble(other.rep_->doubles[p]);
      break;
    case TypeId::kString:
      AppendString(other.rep_->strings[p]);
      break;
    case TypeId::kInvalid:
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  size_t p = PhysRow(i);
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(rep_->ints[p] != 0);
    case TypeId::kInt64:
      return Value::Int64(rep_->ints[p]);
    case TypeId::kDate:
      return Value::Date(rep_->ints[p]);
    case TypeId::kDouble:
      return Value::Double(rep_->doubles[p]);
    case TypeId::kString:
      return Value::String(rep_->strings[p]);
    case TypeId::kInvalid:
      return Value::Null();
  }
  return Value::Null();
}

void ColumnVector::SetValue(size_t i, const Value& v) {
  AGORA_DCHECK(i < size());
  Rep* rep = EnsureUnique();
  if (v.is_null()) {
    rep->validity[i] = 0;
    return;
  }
  rep->validity[i] = 1;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      rep->ints[i] = v.int64_value();
      break;
    case TypeId::kDouble:
      rep->doubles[i] = v.type() == TypeId::kDouble ? v.double_value()
                                                    : v.AsDouble();
      break;
    case TypeId::kString:
      rep->string_bytes -= StrCost(rep->strings[i]);
      rep->strings[i] = v.string_value();
      rep->string_bytes += StrCost(rep->strings[i]);
      break;
    case TypeId::kInvalid:
      break;
  }
  rep->Recharge();
}

bool ColumnVector::AllValid() const {
  if (!rep_) return true;
  for (uint8_t v : rep_->validity) {
    if (v == 0) return false;
  }
  return true;
}

uint64_t ColumnVector::HashRow(size_t i) const {
  if (IsNull(i)) return 0x6e756c6cULL;
  size_t p = PhysRow(i);
  switch (type_) {
    case TypeId::kString:
      return HashString(rep_->strings[p]);
    case TypeId::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &rep_->doubles[p], sizeof(bits));
      return HashMix64(bits);
    }
    default:
      return HashMix64(static_cast<uint64_t>(rep_->ints[p]));
  }
}

void ColumnVector::HashBatch(uint64_t* hashes, size_t n, bool combine,
                             bool normalize_zero) const {
  AGORA_DCHECK(!constant_);
  AGORA_DCHECK(n <= size());
  if (!rep_) return;  // empty vector: size() == 0, so n == 0
  const Rep& rep = *rep_;
  auto emit = [&](size_t i, uint64_t h) {
    hashes[i] = combine ? HashCombine(hashes[i], h) : h;
  };
  switch (type_) {
    case TypeId::kString:
      for (size_t i = 0; i < n; ++i) {
        emit(i,
             rep.validity[i] != 0 ? HashString(rep.strings[i]) : kNullHash);
      }
      break;
    case TypeId::kDouble:
      for (size_t i = 0; i < n; ++i) {
        if (rep.validity[i] == 0) {
          emit(i, kNullHash);
          continue;
        }
        double d = rep.doubles[i];
        if (normalize_zero && d == 0.0) d = 0.0;
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        emit(i, HashMix64(bits));
      }
      break;
    default:
      for (size_t i = 0; i < n; ++i) {
        emit(i, rep.validity[i] != 0
                    ? HashMix64(static_cast<uint64_t>(rep.ints[i]))
                    : kNullHash);
      }
      break;
  }
}

void ColumnVector::BatchEqualRows(const uint32_t* rows,
                                  const ColumnVector& other,
                                  const uint32_t* other_rows, size_t n,
                                  bool bitwise_doubles,
                                  uint8_t* equal) const {
  AGORA_DCHECK(type_ == other.type_);
  AGORA_DCHECK(!constant_ && !other.constant_);
  if (!rep_ || !other.rep_) return;  // an empty side means n == 0
  const Rep& lhs = *rep_;
  const Rep& rhs = *other.rep_;
  switch (type_) {
    case TypeId::kString:
      for (size_t i = 0; i < n; ++i) {
        if (equal[i] == 0) continue;
        size_t a = rows[i], b = other_rows[i];
        bool an = lhs.validity[a] == 0, bn = rhs.validity[b] == 0;
        equal[i] = (an || bn) ? (an && bn)
                              : (lhs.strings[a] == rhs.strings[b]);
      }
      break;
    case TypeId::kDouble:
      for (size_t i = 0; i < n; ++i) {
        if (equal[i] == 0) continue;
        size_t a = rows[i], b = other_rows[i];
        bool an = lhs.validity[a] == 0, bn = rhs.validity[b] == 0;
        if (an || bn) {
          equal[i] = an && bn;
          continue;
        }
        double x = lhs.doubles[a], y = rhs.doubles[b];
        if (bitwise_doubles) {
          if (x == 0.0) x = 0.0;
          if (y == 0.0) y = 0.0;
          uint64_t xb, yb;
          std::memcpy(&xb, &x, sizeof(xb));
          std::memcpy(&yb, &y, sizeof(yb));
          equal[i] = xb == yb;
        } else {
          equal[i] = !(x < y) && !(x > y);
        }
      }
      break;
    default:
      for (size_t i = 0; i < n; ++i) {
        if (equal[i] == 0) continue;
        size_t a = rows[i], b = other_rows[i];
        bool an = lhs.validity[a] == 0, bn = rhs.validity[b] == 0;
        equal[i] = (an || bn) ? (an && bn) : (lhs.ints[a] == rhs.ints[b]);
      }
      break;
  }
}

void ColumnVector::AppendGatherPadded(const ColumnVector& src,
                                      const uint32_t* sel, size_t n) {
  AGORA_DCHECK(type_ == src.type_);
  AGORA_DCHECK(!src.constant_);
  if (n == 0) return;
  constexpr uint32_t kPad = UINT32_MAX;
  Rep* out = EnsureUnique();
  // An empty src is legal when every sel entry is kPad (NULL padding from
  // an empty build side); fall back to an empty Rep so no entry can index it.
  static const Rep kEmptyRep(nullptr);
  const Rep& in = src.rep_ ? *src.rep_ : kEmptyRep;
  out->validity.reserve(out->validity.size() + n);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      out->ints.reserve(out->ints.size() + n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t s = sel[i];
        bool valid = s != kPad && in.validity[s] != 0;
        out->validity.push_back(valid ? 1 : 0);
        out->ints.push_back(valid ? in.ints[s] : 0);
      }
      break;
    case TypeId::kDouble:
      out->doubles.reserve(out->doubles.size() + n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t s = sel[i];
        bool valid = s != kPad && in.validity[s] != 0;
        out->validity.push_back(valid ? 1 : 0);
        out->doubles.push_back(valid ? in.doubles[s] : 0.0);
      }
      break;
    case TypeId::kString:
      out->strings.reserve(out->strings.size() + n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t s = sel[i];
        bool valid = s != kPad && in.validity[s] != 0;
        out->validity.push_back(valid ? 1 : 0);
        if (valid) {
          out->strings.push_back(in.strings[s]);
        } else {
          out->strings.emplace_back();
        }
        out->string_bytes += StrCost(out->strings.back());
      }
      break;
    case TypeId::kInvalid:
      break;
  }
  out->Recharge();
}

int ColumnVector::CompareRows(size_t i, const ColumnVector& other,
                              size_t j) const {
  AGORA_DCHECK(type_ == other.type_);
  bool an = IsNull(i), bn = other.IsNull(j);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  size_t p = PhysRow(i), q = other.PhysRow(j);
  switch (type_) {
    case TypeId::kString: {
      int c = rep_->strings[p].compare(other.rep_->strings[q]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = rep_->doubles[p], b = other.rep_->doubles[q];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      int64_t a = rep_->ints[p], b = other.rep_->ints[q];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  if (constant_) {
    // Gathering from a constant yields the same constant, resized.
    ColumnVector out = *this;
    out.logical_size_ = sel.size();
    if (sel.empty()) out.Clear();
    return out;
  }
  ColumnVector out(type_);
  out.AppendGatherPadded(*this, sel.data(), sel.size());
  return out;
}

ColumnVector ColumnVector::Slice(size_t begin, size_t count) const {
  size_t end = begin + count;
  AGORA_DCHECK(end <= size());
  if (begin == 0 && count == size()) return *this;  // zero-copy share
  if (constant_) {
    ColumnVector out = *this;
    out.logical_size_ = count;
    if (count == 0) out.Clear();
    return out;
  }
  ColumnVector out(type_);
  if (count == 0) return out;
  Rep* dst = out.EnsureUnique();
  const Rep& src = *rep_;
  dst->validity.assign(src.validity.begin() + begin,
                       src.validity.begin() + end);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      dst->ints.assign(src.ints.begin() + begin, src.ints.begin() + end);
      break;
    case TypeId::kDouble:
      dst->doubles.assign(src.doubles.begin() + begin,
                          src.doubles.begin() + end);
      break;
    case TypeId::kString:
      dst->strings.assign(src.strings.begin() + begin,
                          src.strings.begin() + end);
      for (const auto& s : dst->strings) dst->string_bytes += StrCost(s);
      break;
    case TypeId::kInvalid:
      break;
  }
  dst->Recharge();
  return out;
}

size_t ColumnVector::MemoryBytes() const {
  if (!rep_) return 0;
  const Rep& rep = *rep_;
  return rep.validity.capacity() + rep.ints.capacity() * sizeof(int64_t) +
         rep.doubles.capacity() * sizeof(double) + rep.string_bytes;
}

Status ColumnVector::CheckConsistency() const {
  size_t rows = rep_ ? rep_->validity.size() : 0;
  if (constant_) {
    if (rows != 1) {
      return Status::Internal(
          "constant column vector must hold exactly one physical row, has " +
          std::to_string(rows));
    }
    rows = 1;  // payload check below covers the single physical row
  }
  size_t payload = 0;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      payload = rep_ ? rep_->ints.size() : 0;
      break;
    case TypeId::kDouble:
      payload = rep_ ? rep_->doubles.size() : 0;
      break;
    case TypeId::kString:
      payload = rep_ ? rep_->strings.size() : 0;
      break;
    default:
      if (rows != 0) {
        return Status::Internal(
            "column vector of invalid type declares " + std::to_string(rows) +
            " rows");
      }
      return Status::OK();
  }
  if (payload != rows) {
    return Status::Internal(
        std::string("column vector payload/validity mismatch: type ") +
        std::string(TypeIdToString(type_)) + " has " +
        std::to_string(payload) + " payload rows but validity declares " +
        std::to_string(rows));
  }
  return Status::OK();
}

}  // namespace agora
