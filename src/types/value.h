#ifndef AGORA_TYPES_VALUE_H_
#define AGORA_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"
#include "common/result.h"
#include "types/type.h"

namespace agora {

/// A single scalar value with dynamic type and nullability. Used at system
/// boundaries (literals, result sets, catalog statistics); the execution
/// engine works on columnar vectors instead.
class Value {
 public:
  /// NULL of unknown type.
  Value() : type_(TypeId::kInvalid), null_(true) {}

  static Value Null(TypeId type = TypeId::kInvalid) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.null_ = false;
    v.data_ = static_cast<int64_t>(b ? 1 : 0);
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.null_ = false;
    v.data_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.null_ = false;
    v.data_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.null_ = false;
    v.data_ = std::move(s);
    return v;
  }
  static Value Date(int64_t days) {
    Value v;
    v.type_ = TypeId::kDate;
    v.null_ = false;
    v.data_ = days;
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const {
    AGORA_DCHECK(!null_ && type_ == TypeId::kBool);
    return std::get<int64_t>(data_) != 0;
  }
  int64_t int64_value() const {
    AGORA_DCHECK(!null_ &&
                 (type_ == TypeId::kInt64 || type_ == TypeId::kDate ||
                  type_ == TypeId::kBool));
    return std::get<int64_t>(data_);
  }
  double double_value() const {
    AGORA_DCHECK(!null_ && type_ == TypeId::kDouble);
    return std::get<double>(data_);
  }
  const std::string& string_value() const {
    AGORA_DCHECK(!null_ && type_ == TypeId::kString);
    return std::get<std::string>(data_);
  }

  /// Numeric view: int64/date/bool as double, double as-is. DCHECKs on
  /// strings/null.
  double AsDouble() const {
    AGORA_DCHECK(!null_);
    if (type_ == TypeId::kDouble) return std::get<double>(data_);
    return static_cast<double>(std::get<int64_t>(data_));
  }

  /// Coerces to `target`; fails with TypeError if not ImplicitlyCoercible.
  Result<Value> CastTo(TypeId target) const;

  /// SQL-style three-valued comparison is handled by callers; this is a
  /// total ordering for sorting with NULLs first, then by type, then value.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display form: "NULL", "42", "3.14", "abc", "1995-03-15".
  std::string ToString() const;

  /// Hash consistent with operator== across coercible numeric types is NOT
  /// guaranteed; hash within one column type only.
  uint64_t Hash() const;

 private:
  TypeId type_;
  bool null_;
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace agora

#endif  // AGORA_TYPES_VALUE_H_
