#ifndef AGORA_EXEC_PARALLEL_H_
#define AGORA_EXEC_PARALLEL_H_

#include <functional>
#include <vector>

#include "exec/physical_op.h"
#include "exec/scan.h"

namespace agora {

/// Morsel-driven parallelism (Leis et al., SIGMOD'14 style, adapted to
/// this engine's pull operators).
///
/// A *morsel pipeline* is the longest chain of thread-safe per-chunk
/// transforms above a PhysicalScan leaf:
///
///     Scan (→ Filter | Project | HashJoin-probe)*
///
/// Workers claim ~64K-row morsels from the scan's atomic cursor and push
/// each morsel through the whole chain, so one cache-resident batch flows
/// scan → filter → probe without synchronization. Pipeline *breakers*
/// (aggregate, sort, distinct, the root collector) sit above and either
/// consume morsel results themselves (PhysicalHashAggregate) or read from
/// a PhysicalGather exchange.
///
/// Determinism contract: whether a plan uses the morsel path depends only
/// on plan shape, the `enable_parallel` switch, and the source table size
/// — never on the worker count. All merges happen in morsel-index order.
/// Together this makes query results (including floating-point aggregate
/// rounding) and ExecStats counters byte-identical at every thread count.
class MorselPipeline {
 public:
  /// Recognizes the pipeline shape rooted at `op` without opening
  /// anything. Returns false when the subtree contains a non-pipeline
  /// operator (index scan, sort, union, nested-loop join, ...).
  static bool TryBuild(PhysicalOperator* op, MorselPipeline* out);

  PhysicalScan* source() const { return source_; }

  /// Applies every transform to one source chunk. `*out` may come back
  /// empty (fully filtered / no join match). Thread-safe after the
  /// member operators were opened.
  Status Apply(Chunk&& chunk, Chunk* out, ExecStats* stats) const;

 private:
  using Transform =
      std::function<Status(const Chunk&, Chunk*, ExecStats*)>;

  PhysicalScan* source_ = nullptr;
  std::vector<Transform> transforms_;  // source-to-root order
};

/// True when `op` roots a morsel pipeline the engine may parallelize:
/// recognizable shape, `context.enable_parallel`, and a source table of
/// at least `context.parallel_min_rows` rows. Deliberately independent of
/// `context.num_workers` (see the determinism contract above). Fills
/// `*pipeline` on success.
bool ParallelEligible(PhysicalOperator* op, const ExecContext& context,
                      MorselPipeline* pipeline);

/// Runs `pipeline` to completion with `context->num_workers` tasks on
/// `context->pool` (inline on the calling thread when the pool is null).
/// Every non-empty chunk is handed to `sink(worker, morsel, chunk)`; a
/// given morsel is processed by exactly one worker, so sinks may write to
/// per-morsel slots without locking. Prepares the context's per-worker
/// stat slots before the section and merges them (exactly) at the
/// barrier. Returns the first worker error.
Status DriveMorselPipeline(
    const MorselPipeline& pipeline, ExecContext* context,
    const std::function<Status(int, const Morsel&, Chunk&&)>& sink);

/// Drains `op` like CollectAll, but through the morsel pipeline when
/// eligible: chunks are concatenated in morsel order, so the result is
/// byte-identical to the serial pull order at any worker count. Falls
/// back to CollectAll otherwise. Calls op->Open() in both paths.
Result<Chunk> ParallelCollectAll(PhysicalOperator* op, ExecContext* context);

/// Exchange operator: Open() drives the child morsel pipeline with the
/// worker pool and buffers the output; Next() then streams the chunks in
/// morsel order. The physical planner inserts it below order-insensitive
/// pipeline breakers (Sort and TopK inputs get re-ordered anyway; a
/// serial exchange-merge above keeps SortLimit order-exact) and at plan
/// roots. Degenerates to a pass-through when the child turns out not to
/// be pipeline-shaped at Open() time.
class PhysicalGather : public PhysicalOperator {
 public:
  PhysicalGather(PhysicalOpPtr child, ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "Gather"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 private:
  PhysicalOpPtr child_;
  std::vector<Chunk> chunks_;  // morsel order; only non-empty chunks
  size_t next_chunk_ = 0;
  bool passthrough_ = false;
};

}  // namespace agora

#endif  // AGORA_EXEC_PARALLEL_H_
