#ifndef AGORA_TYPES_SCHEMA_H_
#define AGORA_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/type.h"

namespace agora {

/// One column: a name and a logical type. `nullable` is advisory; the
/// engine always carries validity bitmaps.
struct Field {
  std::string name;
  TypeId type = TypeId::kInvalid;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered collection of fields describing a table or an operator's output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the column named `name` (case-insensitive), or nullopt.
  std::optional<size_t> FindField(const std::string& name) const;

  /// Like FindField but returns a BindError mentioning `name`.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Concatenation of this schema and `right` (join output shape).
  Schema Concat(const Schema& right) const;

  /// "name TYPE, name TYPE, ..." for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace agora

#endif  // AGORA_TYPES_SCHEMA_H_
