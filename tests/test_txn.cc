// Tests for the MVCC key-value store: snapshot isolation semantics,
// conflict detection, garbage collection and concurrent invariants.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "txn/mvcc_store.h"

namespace agora {
namespace {

TEST(MvccTest, BasicPutGet) {
  MvccStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  auto v = store.Get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "1");
  EXPECT_FALSE(store.Get("missing").has_value());
}

TEST(MvccTest, ReadYourOwnWrites) {
  MvccStore store;
  Transaction txn = store.Begin();
  txn.Put("k", "v");
  auto v = txn.Get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v");
  // Not visible outside before commit.
  EXPECT_FALSE(store.Get("k").has_value());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(store.Get("k").has_value());
}

TEST(MvccTest, SnapshotIsolationHidesLaterCommits) {
  MvccStore store;
  ASSERT_TRUE(store.Put("x", "old").ok());
  Transaction reader = store.Begin();
  ASSERT_TRUE(store.Put("x", "new").ok());  // commits after reader began
  auto v = reader.Get("x");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "old");  // reader's snapshot is stable
  ASSERT_TRUE(reader.Commit().ok());
  EXPECT_EQ(*store.Get("x"), "new");
}

TEST(MvccTest, WriteWriteConflictAborts) {
  MvccStore store;
  ASSERT_TRUE(store.Put("k", "0").ok());
  Transaction t1 = store.Begin();
  Transaction t2 = store.Begin();
  t1.Put("k", "1");
  t2.Put("k", "2");
  ASSERT_TRUE(t1.Commit().ok());  // first committer wins
  Status s = t2.Commit();
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(*store.Get("k"), "1");
  EXPECT_EQ(store.commits(), 2u);  // initial put + t1
  EXPECT_EQ(store.aborts(), 1u);
}

TEST(MvccTest, DisjointWritesBothCommit) {
  MvccStore store;
  Transaction t1 = store.Begin();
  Transaction t2 = store.Begin();
  t1.Put("a", "1");
  t2.Put("b", "2");
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
  EXPECT_EQ(*store.Get("a"), "1");
  EXPECT_EQ(*store.Get("b"), "2");
}

TEST(MvccTest, DeleteProducesTombstone) {
  MvccStore store;
  ASSERT_TRUE(store.Put("k", "v").ok());
  Transaction reader = store.Begin();
  Transaction deleter = store.Begin();
  deleter.Delete("k");
  ASSERT_TRUE(deleter.Commit().ok());
  EXPECT_FALSE(store.Get("k").has_value());
  // Old snapshot still sees the value.
  EXPECT_TRUE(reader.Get("k").has_value());
  ASSERT_TRUE(reader.Commit().ok());
}

TEST(MvccTest, AbortDiscardsWrites) {
  MvccStore store;
  Transaction txn = store.Begin();
  txn.Put("k", "v");
  txn.Abort();
  EXPECT_FALSE(store.Get("k").has_value());
  EXPECT_EQ(store.aborts(), 1u);
}

TEST(MvccTest, DestructorAbortsActiveTransaction) {
  MvccStore store;
  {
    Transaction txn = store.Begin();
    txn.Put("k", "v");
  }  // destroyed without commit
  EXPECT_FALSE(store.Get("k").has_value());
  EXPECT_EQ(store.aborts(), 1u);
}

TEST(MvccTest, ReadOnlyTransactionsNeverConflict) {
  MvccStore store;
  ASSERT_TRUE(store.Put("k", "v").ok());
  Transaction t1 = store.Begin();
  Transaction t2 = store.Begin();
  (void)t1.Get("k");
  (void)t2.Get("k");
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
}

TEST(MvccTest, GarbageCollectionPrunesOldVersions) {
  MvccStore store;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Put("k", std::to_string(i)).ok());
  }
  EXPECT_EQ(store.num_versions(), 10u);
  size_t reclaimed = store.GarbageCollect();
  EXPECT_EQ(reclaimed, 9u);
  EXPECT_EQ(store.num_versions(), 1u);
  EXPECT_EQ(*store.Get("k"), "9");
}

TEST(MvccTest, GcRespectsActiveSnapshots) {
  MvccStore store;
  ASSERT_TRUE(store.Put("k", "v1").ok());
  Transaction reader = store.Begin();
  ASSERT_TRUE(store.Put("k", "v2").ok());
  ASSERT_TRUE(store.Put("k", "v3").ok());
  // v1 must survive: `reader` can still see it.
  store.GarbageCollect();
  auto v = reader.Get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v1");
  ASSERT_TRUE(reader.Commit().ok());
  // Now everything before v3 is reclaimable.
  store.GarbageCollect();
  EXPECT_EQ(store.num_versions(), 1u);
}

// Concurrency: N threads transfer between accounts; total balance is
// invariant under snapshot isolation with write-write validation.
TEST(MvccTest, ConcurrentTransfersPreserveTotalBalance) {
  MvccStore store;
  constexpr int kAccounts = 16;
  constexpr int64_t kInitial = 1000;
  for (int a = 0; a < kAccounts; ++a) {
    ASSERT_TRUE(store.Put("acct" + std::to_string(a),
                          std::to_string(kInitial)).ok());
  }
  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 500;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &committed, t]() {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kTransfersPerThread; ++i) {
        int from = static_cast<int>(rng.Uniform(0, kAccounts - 1));
        int to = static_cast<int>(rng.Uniform(0, kAccounts - 1));
        if (from == to) continue;
        Transaction txn = store.Begin();
        auto fv = txn.Get("acct" + std::to_string(from));
        auto tv = txn.Get("acct" + std::to_string(to));
        ASSERT_TRUE(fv.has_value() && tv.has_value());
        int64_t amount = rng.Uniform(1, 10);
        txn.Put("acct" + std::to_string(from),
                std::to_string(std::stoll(*fv) - amount));
        txn.Put("acct" + std::to_string(to),
                std::to_string(std::stoll(*tv) + amount));
        if (txn.Commit().ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  int64_t total = 0;
  for (int a = 0; a < kAccounts; ++a) {
    auto v = store.Get("acct" + std::to_string(a));
    ASSERT_TRUE(v.has_value());
    total += std::stoll(*v);
  }
  EXPECT_EQ(total, kAccounts * kInitial);
  EXPECT_GT(committed.load(), 0);
  // Under contention some transactions must have aborted or all
  // committed; either way commits+initial setup match the counter.
  EXPECT_EQ(store.commits(),
            static_cast<uint64_t>(committed.load()) + kAccounts);
}

// Concurrent readers always observe a consistent snapshot (the sum of two
// keys updated together never tears).
TEST(MvccTest, ReadersNeverObserveTornWrites) {
  MvccStore store;
  ASSERT_TRUE(store.Put("x", "0").ok());
  ASSERT_TRUE(store.Put("y", "0").ok());
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&]() {
    for (int i = 1; i <= 2000; ++i) {
      Transaction txn = store.Begin();
      txn.Put("x", std::to_string(i));
      txn.Put("y", std::to_string(-i));
      (void)txn.Commit();
    }
    stop.store(true);
  });
  std::thread reader([&]() {
    while (!stop.load()) {
      Transaction txn = store.Begin();
      auto x = txn.Get("x");
      auto y = txn.Get("y");
      if (x.has_value() && y.has_value() &&
          std::stoll(*x) + std::stoll(*y) != 0) {
        violations.fetch_add(1);
      }
      (void)txn.Commit();
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(MvccTest, HighContentionSingleKeyCounterLosesNoIncrements) {
  MvccStore store;
  ASSERT_TRUE(store.Put("counter", "0").ok());
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store]() {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        // Retry loop: aborted increments retry until they commit.
        while (true) {
          Transaction txn = store.Begin();
          auto v = txn.Get("counter");
          txn.Put("counter", std::to_string(std::stoll(*v) + 1));
          if (txn.Commit().ok()) break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // The invariant: no increment is ever lost, regardless of how many
  // conflicts/retries occurred (abort counts are timing-dependent).
  EXPECT_EQ(*store.Get("counter"),
            std::to_string(kThreads * kIncrementsPerThread));
}

}  // namespace
}  // namespace agora
