// Edge-case battery across modules: empty inputs, boundary limits,
// NULL-heavy data, and pathological-but-legal SQL.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "hybrid/collection.h"
#include "pipeline/pipeline.h"
#include "pipeline/stages.h"

namespace agora {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  QueryResult Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult();
  }
  Database db_;
};

TEST_F(EdgeCaseTest, EmptyTableBehaviors) {
  Exec("CREATE TABLE e (a BIGINT, b VARCHAR)");
  EXPECT_EQ(Exec("SELECT * FROM e").num_rows(), 0u);
  // Scalar aggregates over empty input: COUNT = 0, others NULL.
  QueryResult agg = Exec("SELECT COUNT(*), SUM(a), MIN(a), AVG(a) FROM e");
  ASSERT_EQ(agg.num_rows(), 1u);
  EXPECT_EQ(agg.Get(0, 0).int64_value(), 0);
  EXPECT_TRUE(agg.Get(0, 1).is_null());
  EXPECT_TRUE(agg.Get(0, 2).is_null());
  EXPECT_TRUE(agg.Get(0, 3).is_null());
  // Grouped aggregate over empty input: zero groups.
  EXPECT_EQ(Exec("SELECT b, COUNT(*) FROM e GROUP BY b").num_rows(), 0u);
  // Joins with an empty side.
  Exec("CREATE TABLE f (a BIGINT)");
  Exec("INSERT INTO f VALUES (1), (2)");
  EXPECT_EQ(Exec("SELECT * FROM f JOIN e ON f.a = e.a").num_rows(), 0u);
  EXPECT_EQ(Exec("SELECT * FROM f LEFT JOIN e ON f.a = e.a").num_rows(),
            2u);
  // Sort/limit/distinct over empty input.
  EXPECT_EQ(Exec("SELECT DISTINCT a FROM e ORDER BY a LIMIT 5").num_rows(),
            0u);
  // DML over empty table.
  EXPECT_EQ(Exec("DELETE FROM e").GetByName(0, "rows_affected")
                .int64_value(),
            0);
  EXPECT_EQ(Exec("UPDATE e SET a = 1").GetByName(0, "rows_affected")
                .int64_value(),
            0);
}

TEST_F(EdgeCaseTest, LimitBoundaries) {
  Exec("CREATE TABLE t (a BIGINT)");
  Exec("INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Exec("SELECT a FROM t LIMIT 0").num_rows(), 0u);
  EXPECT_EQ(Exec("SELECT a FROM t LIMIT 99").num_rows(), 3u);
  EXPECT_EQ(Exec("SELECT a FROM t LIMIT 2 OFFSET 99").num_rows(), 0u);
  EXPECT_EQ(Exec("SELECT a FROM t ORDER BY a LIMIT 0").num_rows(), 0u);
  QueryResult r = Exec("SELECT a FROM t ORDER BY a DESC LIMIT 99 OFFSET 1");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.Get(0, 0).int64_value(), 2);
}

TEST_F(EdgeCaseTest, NullOnlyColumnAggregation) {
  Exec("CREATE TABLE n (g VARCHAR, x DOUBLE)");
  Exec("INSERT INTO n VALUES ('a', NULL), ('a', NULL), ('b', 1.5)");
  QueryResult r = Exec(
      "SELECT g, COUNT(*), COUNT(x), SUM(x), AVG(x) FROM n GROUP BY g "
      "ORDER BY g");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.Get(0, 1).int64_value(), 2);
  EXPECT_EQ(r.Get(0, 2).int64_value(), 0);
  EXPECT_TRUE(r.Get(0, 3).is_null());
  EXPECT_TRUE(r.Get(0, 4).is_null());
  EXPECT_DOUBLE_EQ(r.Get(1, 3).double_value(), 1.5);
  // NULL forms its own group.
  Exec("INSERT INTO n VALUES (NULL, 9.0)");
  EXPECT_EQ(Exec("SELECT g, COUNT(*) FROM n GROUP BY g").num_rows(), 3u);
}

TEST_F(EdgeCaseTest, GroupByExpressionAndConstants) {
  Exec("CREATE TABLE g (a BIGINT)");
  Exec("INSERT INTO g VALUES (1), (2), (3), (4)");
  QueryResult r = Exec(
      "SELECT a % 2, COUNT(*), 7 FROM g GROUP BY a % 2 ORDER BY 1");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.Get(0, 1).int64_value(), 2);
  EXPECT_EQ(r.Get(0, 2).int64_value(), 7);  // constant in agg select list
}

TEST_F(EdgeCaseTest, CaseWithoutElseYieldsNull) {
  Exec("CREATE TABLE c (a BIGINT)");
  Exec("INSERT INTO c VALUES (1), (5)");
  QueryResult r = Exec(
      "SELECT CASE WHEN a > 3 THEN 'big' END FROM c ORDER BY a");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_TRUE(r.Get(0, 0).is_null());
  EXPECT_EQ(r.Get(1, 0).string_value(), "big");
}

TEST_F(EdgeCaseTest, QuotedIdentifiers) {
  Exec("CREATE TABLE \"weird name\" (\"col one\" BIGINT)");
  Exec("INSERT INTO \"weird name\" VALUES (42)");
  QueryResult r = Exec("SELECT \"col one\" FROM \"weird name\"");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.Get(0, 0).int64_value(), 42);
}

TEST_F(EdgeCaseTest, SelfJoinWithAliases) {
  Exec("CREATE TABLE s (id BIGINT, boss BIGINT)");
  Exec("INSERT INTO s VALUES (1, NULL), (2, 1), (3, 1), (4, 2)");
  QueryResult r = Exec(
      "SELECT e.id, m.id FROM s e JOIN s m ON e.boss = m.id ORDER BY e.id");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.Get(0, 0).int64_value(), 2);
  EXPECT_EQ(r.Get(0, 1).int64_value(), 1);
}

TEST_F(EdgeCaseTest, ChunkBoundarySizes) {
  // Sizes straddling the 2048-row chunk boundary exercise slicing logic.
  for (int n : {2047, 2048, 2049, 4096}) {
    Database db;
    ASSERT_TRUE(db.Execute("CREATE TABLE t (a BIGINT)").ok());
    std::string sql;
    for (int i = 0; i < n; ++i) {
      if (sql.empty()) sql = "INSERT INTO t VALUES ";
      sql += "(" + std::to_string(i) + "),";
      if (i % 1000 == 999 || i + 1 == n) {
        sql.back() = ' ';
        ASSERT_TRUE(db.Execute(sql).ok());
        sql.clear();
      }
    }
    auto count = db.Execute("SELECT COUNT(*), SUM(a) FROM t");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ((*count).Get(0, 0).int64_value(), n);
    EXPECT_EQ((*count).Get(0, 1).int64_value(),
              static_cast<int64_t>(n) * (n - 1) / 2);
    auto page = db.Execute("SELECT a FROM t ORDER BY a LIMIT 3 OFFSET " +
                           std::to_string(n - 2));
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page).num_rows(), 2u) << n;
  }
}

TEST(HybridEdgeTest, SingleDocumentCollection) {
  SyntheticHybridData data = MakeSyntheticHybridData(1, 8, 2);
  HybridCollection collection(data.attr_schema, 8);
  ASSERT_TRUE(collection.Add(data.docs[0]).ok());
  ASSERT_TRUE(collection.BuildIndexes().ok());
  HybridQuery q;
  q.embedding = data.docs[0].embedding;
  q.k = 10;
  auto result = collection.Search(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(HybridEdgeTest, FilterMatchingNothing) {
  SyntheticHybridData data = MakeSyntheticHybridData(200, 8, 2);
  HybridCollection collection(data.attr_schema, 8);
  for (const HybridDoc& doc : data.docs) {
    ASSERT_TRUE(collection.Add(doc).ok());
  }
  ASSERT_TRUE(collection.BuildIndexes().ok());
  HybridQuery q;
  q.keywords = data.topic_names[0];
  q.filter_sql = "price < 0";  // impossible
  q.k = 5;
  auto fused = collection.Search(q);
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(fused->empty());
  auto federated = collection.SearchFederated(q);
  ASSERT_TRUE(federated.ok());
  EXPECT_TRUE(federated->empty());
}

TEST(PipelineEdgeTest, EmptyCorpusAndEmptyPipeline) {
  Pipeline pipe;
  pipe.AddStage(std::make_shared<LengthFilter>(1, 10));
  EXPECT_TRUE(pipe.Run({}).empty());
  Pipeline empty;
  std::vector<PipelineDoc> docs = {{0, "hello world"}};
  auto out = empty.Run(docs);
  EXPECT_EQ(out.size(), 1u);  // no stages = identity
}

TEST(PipelineEdgeTest, OptimizerSampleLargerThanCorpus) {
  PipelineOptimizerOptions options;
  options.sample_size = 10000;
  PipelineOptimizer optimizer(options);
  Pipeline pipe;
  pipe.AddStage(std::make_shared<NearDedupFilter>());
  pipe.AddStage(std::make_shared<LengthFilter>(1, 100000));
  Pipeline optimized = optimizer.Optimize(pipe, MakeSyntheticCorpus(20));
  EXPECT_EQ(optimized.num_stages(), 2u);
}

}  // namespace
}  // namespace agora
