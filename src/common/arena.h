#ifndef AGORA_COMMON_ARENA_H_
#define AGORA_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/memory_tracker.h"

namespace agora {

/// Bump-pointer allocator for short-lived, same-lifetime allocations on
/// query hot paths (string payloads in chunks, hash-table rows). All memory
/// is released at once on destruction or `Reset()`; individual allocations
/// are never freed.
///
/// Block reservations are charged to the thread's current MemoryTracker
/// captured at construction (no-op when constructed outside a query).
class Arena {
 public:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `size` bytes aligned to `align` (power of two).
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    size_t current = reinterpret_cast<uintptr_t>(ptr_);
    size_t aligned = (current + align - 1) & ~(align - 1);
    size_t padding = aligned - current;
    if (ptr_ == nullptr || padding + size > remaining_) {
      NewBlock(size + align);
      current = reinterpret_cast<uintptr_t>(ptr_);
      aligned = (current + align - 1) & ~(align - 1);
      padding = aligned - current;
    }
    ptr_ += padding + size;
    remaining_ -= padding + size;
    allocated_bytes_ += size;
    return reinterpret_cast<void*>(aligned);
  }

  /// Copies `data` into the arena and returns a view of the copy.
  std::string_view CopyString(std::string_view data) {
    if (data.empty()) return {};
    char* dst = static_cast<char*>(Allocate(data.size(), 1));
    std::memcpy(dst, data.data(), data.size());
    return {dst, data.size()};
  }

  /// Allocates an uninitialized array of `n` objects of trivial type T.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Allocates a zero-initialized array of `n` objects of trivial type T.
  /// Hash-table slot directories use this: all-zero is their empty state.
  template <typename T>
  T* AllocateZeroedArray(size_t n) {
    T* data = AllocateArray<T>(n);
    std::memset(static_cast<void*>(data), 0, n * sizeof(T));
    return data;
  }

  /// Drops all blocks; invalidates every pointer previously returned.
  void Reset() {
    blocks_.clear();
    charge_.Update(0);
    ptr_ = nullptr;
    remaining_ = 0;
    allocated_bytes_ = 0;
  }

  /// Total bytes handed out since construction/Reset (not block overhead).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// Total bytes reserved from the system.
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  void NewBlock(size_t min_size) {
    size_t size = min_size > block_size_ ? min_size : block_size_;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    charge_.Update(charge_.amount() + size);
    ptr_ = blocks_.back().data.get();
    remaining_ = size;
  }

  size_t block_size_;
  MemoryCharge charge_;
  std::vector<Block> blocks_;
  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  size_t allocated_bytes_ = 0;
};

}  // namespace agora

#endif  // AGORA_COMMON_ARENA_H_
