#ifndef AGORA_SERVER_ADMISSION_H_
#define AGORA_SERVER_ADMISSION_H_

// Per-query admission control for the HTTP front end. The embedded
// Database parallelizes each query internally across the morsel pool,
// so running many queries at once multiplies memory pressure without
// adding throughput; the controller bounds concurrent execution slots
// and holds a bounded overflow queue whose waiters time out against the
// same per-request deadline the query itself would run under. This
// composes with the engine memory budget (PR 7): admission bounds how
// many queries charge the budget at once, the budget bounds how much
// each may charge.

#include <chrono>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace agora {

class AdmissionController {
 public:
  enum class Outcome {
    kAdmitted,          // caller owns a slot; must call Release()
    kQueueFull,         // slots busy and the wait queue is at capacity
    kTimedOut,          // deadline passed while queued
    kDraining,          // server is shutting down; no new queries
  };

  /// `max_concurrent` execution slots; up to `max_queued` callers may
  /// block waiting for one. Both must be >= 1.
  AdmissionController(int max_concurrent, int max_queued)
      : max_concurrent_(max_concurrent < 1 ? 1 : max_concurrent),
        max_queued_(max_queued < 0 ? 0 : max_queued) {}

  /// Acquires an execution slot, blocking until one frees, `deadline`
  /// passes (when `has_deadline`), or drain begins. On kAdmitted the
  /// caller must pair with Release().
  Outcome Admit(std::chrono::steady_clock::time_point deadline,
                bool has_deadline) AGORA_EXCLUDES(mu_);

  /// Returns the slot taken by a successful Admit().
  void Release() AGORA_EXCLUDES(mu_);

  /// Rejects all future Admit() calls (and wakes queued waiters) with
  /// kDraining. In-flight slots drain naturally via Release().
  void BeginDrain() AGORA_EXCLUDES(mu_);

  /// Blocks until every admitted query has released its slot. Returns
  /// false if `timeout` elapses first.
  bool WaitIdle(std::chrono::milliseconds timeout) AGORA_EXCLUDES(mu_);

  int active() const AGORA_EXCLUDES(mu_);
  int queued() const AGORA_EXCLUDES(mu_);
  int max_concurrent() const { return max_concurrent_; }

 private:
  const int max_concurrent_;
  const int max_queued_;
  mutable Mutex mu_;
  CondVar cv_;
  int active_ AGORA_GUARDED_BY(mu_) = 0;
  int queued_ AGORA_GUARDED_BY(mu_) = 0;
  bool draining_ AGORA_GUARDED_BY(mu_) = false;
};

}  // namespace agora

#endif  // AGORA_SERVER_ADMISSION_H_
