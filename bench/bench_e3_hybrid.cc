// E3 — hybrid workloads: one engine that plans across vectors, keywords
// and relational filters beats three bolted-together systems.
//
// Paper quote (SIGMOD'25 panel, §3.3.1): "solutions are crappy when you
// combine diverse workloads like vectors, keywords, and relational
// queries in commercial systems".

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "hybrid/collection.h"

namespace agora {
namespace {

struct HybridFixture {
  std::unique_ptr<SyntheticHybridData> data;
  std::unique_ptr<HybridCollection> collection;
};

HybridFixture* GetFixture(size_t n) {
  static std::map<size_t, std::unique_ptr<HybridFixture>>* cache =
      new std::map<size_t, std::unique_ptr<HybridFixture>>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second.get();
  auto fixture = std::make_unique<HybridFixture>();
  fixture->data = std::make_unique<SyntheticHybridData>(
      MakeSyntheticHybridData(n, /*dim=*/32, /*topics=*/8));
  IvfOptions ivf;
  ivf.nlist = 64;
  ivf.nprobe = 8;
  fixture->collection = std::make_unique<HybridCollection>(
      fixture->data->attr_schema, 32, ivf);
  for (const HybridDoc& doc : fixture->data->docs) {
    AGORA_CHECK(fixture->collection->Add(doc).ok());
  }
  AGORA_CHECK(fixture->collection->BuildIndexes().ok());
  HybridFixture* raw = fixture.get();
  cache->emplace(n, std::move(fixture));
  return raw;
}

HybridQuery MakeQuery(const HybridFixture& fixture, size_t topic,
                      std::string filter) {
  HybridQuery q;
  q.keywords = fixture.data->topic_names[topic];
  q.embedding = fixture.data->topic_centroids[topic];
  q.filter_sql = std::move(filter);
  q.k = 10;
  return q;
}

// Filters by selectivity regime; arg1 selects the case.
std::string FilterForCase(int which) {
  switch (which) {
    case 0:
      return "rating = 5 AND price < 5";   // ~1% selective
    case 1:
      return "price < 30";                 // ~30%
    default:
      return "in_stock = TRUE";            // ~85% loose
  }
}

const char* CaseName(int which) {
  switch (which) {
    case 0:
      return "selective(~1%)";
    case 1:
      return "medium(~30%)";
    default:
      return "loose(~85%)";
  }
}

// Args: {corpus size, filter case}.
void BM_FusedHybrid(benchmark::State& state) {
  HybridFixture* fixture = GetFixture(static_cast<size_t>(state.range(0)));
  int which = static_cast<int>(state.range(1));
  HybridQueryStats stats;
  size_t topic = 0;
  for (auto _ : state) {
    HybridQuery q = MakeQuery(*fixture, topic % 8, FilterForCase(which));
    topic++;
    stats = HybridQueryStats{};
    auto result = fixture->collection->Search(q, {}, &stats);
    AGORA_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["filter_rows"] =
      static_cast<double>(stats.filter_rows_evaluated);
  state.counters["vec_dists"] = static_cast<double>(stats.vector_distances);
  state.counters["retries"] = static_cast<double>(stats.retries);
  state.SetLabel(std::string("fused/") + CaseName(which) + "/" +
                 stats.strategy);
}

void BM_FederatedHybrid(benchmark::State& state) {
  HybridFixture* fixture = GetFixture(static_cast<size_t>(state.range(0)));
  int which = static_cast<int>(state.range(1));
  HybridQueryStats stats;
  size_t topic = 0;
  for (auto _ : state) {
    HybridQuery q = MakeQuery(*fixture, topic % 8, FilterForCase(which));
    topic++;
    stats = HybridQueryStats{};
    auto result = fixture->collection->SearchFederated(q, &stats);
    AGORA_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["filter_rows"] =
      static_cast<double>(stats.filter_rows_evaluated);
  state.counters["vec_dists"] = static_cast<double>(stats.vector_distances);
  state.counters["retries"] = static_cast<double>(stats.retries);
  state.SetLabel(std::string("federated/") + CaseName(which));
}

// Args: {corpus size, filter case, strategy (0=auto 1=pre 2=post)}. The
// sweep shows the cost-based choice landing on (or beating) the better
// fixed strategy in every selectivity regime.
void BM_StrategySweep(benchmark::State& state) {
  HybridFixture* fixture = GetFixture(static_cast<size_t>(state.range(0)));
  int which = static_cast<int>(state.range(1));
  HybridExecOptions options;
  const char* requested = "auto";
  switch (state.range(2)) {
    case 1:
      options.strategy = HybridStrategy::kPreFilter;
      requested = "prefilter";
      break;
    case 2:
      options.strategy = HybridStrategy::kPostFilter;
      requested = "postfilter";
      break;
    default:
      break;
  }
  HybridQueryStats stats;
  size_t topic = 0;
  for (auto _ : state) {
    HybridQuery q = MakeQuery(*fixture, topic % 8, FilterForCase(which));
    topic++;
    stats = HybridQueryStats{};
    auto result = fixture->collection->Search(q, options, &stats);
    AGORA_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["vec_dists"] = static_cast<double>(stats.vector_distances);
  state.counters["retries"] = static_cast<double>(stats.retries);
  state.SetLabel(std::string(CaseName(which)) + "/" + requested + "->" +
                 stats.strategy);
}

BENCHMARK(BM_FusedHybrid)
    ->ArgsProduct({{20000, 50000}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FederatedHybrid)
    ->ArgsProduct({{20000, 50000}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StrategySweep)
    ->ArgsProduct({{20000}, {0, 1, 2}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

/// Median-of-5 latency of one engine/strategy on one filter case.
double MeasureLatencyMs(HybridFixture* fixture, int which, bool federated,
                        HybridStrategy strategy, HybridQueryStats* stats) {
  auto run = [&]() {
    HybridQuery q = MakeQuery(*fixture, 0, FilterForCase(which));
    *stats = HybridQueryStats{};
    auto result = federated
                      ? fixture->collection->SearchFederated(q, stats)
                      : fixture->collection->Search(q, {strategy}, stats);
    AGORA_CHECK(result.ok()) << result.status().ToString();
  };
  run();  // warm-up (filter bind cache, stats cache, pool)
  std::vector<double> samples;
  for (int i = 0; i < 5; ++i) {
    Timer timer;
    run();
    samples.push_back(timer.ElapsedSeconds() * 1000.0);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Strategy × selectivity sweep written to BENCH_e3.json (same shape as
/// E1's BENCH_e1.json: one flat "results" array of measurement objects).
void WriteHybridJson() {
  const char* path = "BENCH_e3.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("[E3] cannot open %s for writing; skipping JSON\n", path);
    return;
  }
  struct Config {
    const char* engine;
    bool federated;
    HybridStrategy strategy;
  };
  const Config configs[] = {
      {"fused/auto", false, HybridStrategy::kAuto},
      {"fused/prefilter", false, HybridStrategy::kPreFilter},
      {"fused/postfilter", false, HybridStrategy::kPostFilter},
      {"federated", true, HybridStrategy::kAuto},
  };
  const size_t sizes[] = {20000, 50000};

  std::fprintf(out, "{\n  \"experiment\": \"e3_hybrid\",\n");
  std::fprintf(out, "  \"pool_threads\": %zu,\n",
               ThreadPool::Global()->size());
  std::fprintf(out, "  \"results\": [\n");
  bool first = true;
  bool auto_beats_worst = true;
  for (size_t n : sizes) {
    HybridFixture* fixture = GetFixture(n);
    for (int which = 0; which < 3; ++which) {
      double ms[4];
      HybridQueryStats stats[4];
      for (int c = 0; c < 4; ++c) {
        ms[c] = MeasureLatencyMs(fixture, which, configs[c].federated,
                                 configs[c].strategy, &stats[c]);
      }
      // The cost-based choice must not lose to the worse fixed strategy.
      double worst_fixed = std::max(ms[1], ms[2]);
      if (ms[0] > worst_fixed) auto_beats_worst = false;
      for (int c = 0; c < 4; ++c) {
        if (!first) std::fprintf(out, ",\n");
        first = false;
        std::fprintf(out,
                     "    {\"engine\": \"%s\", \"filter\": \"%s\", \"n\": "
                     "%zu, \"strategy\": \"%s\", \"latency_ms\": %.4f, "
                     "\"filter_rows\": %zu, \"vector_distances\": %zu, "
                     "\"retries\": %zu, \"speedup_vs_worst_fixed\": %.3f}",
                     configs[c].engine, CaseName(which), n,
                     stats[c].strategy.c_str(), ms[c],
                     stats[c].filter_rows_evaluated,
                     stats[c].vector_distances, stats[c].retries,
                     ms[c] > 0.0 ? worst_fixed / ms[c] : 0.0);
      }
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("[E3] strategy sweep written to %s\n", path);
  std::printf("[E3 verdict] cost-based auto %s the worst fixed strategy "
              "on every selectivity regime.\n",
              auto_beats_worst ? "beats or matches" : "LOST to");
}

}  // namespace

void RunE3Report() { WriteHybridJson(); }
}  // namespace agora

int main(int argc, char** argv) {
  agora::bench::PrintClaim(
      "E3: hybrid vector+keyword+relational search, fused vs bolted-together",
      "\"solutions are crappy when you combine diverse workloads like "
      "vectors, keywords, and relational queries\" (panel §3.3.1)",
      "on selective filters the fused engine pre-filters (0 retries, few "
      "distance computations) while the federated stack over-fetches with "
      "repeated doubling; fused wins latency and work on selective cases "
      "and matches on loose ones");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  agora::RunE3Report();
  benchmark::Shutdown();
  return 0;
}
