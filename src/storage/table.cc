#include "storage/table.h"

#include <algorithm>
#include <atomic>
#include <numeric>

namespace agora {

namespace {
std::atomic<uint64_t> next_table_id{1};
}  // namespace

Table::Table(std::string name, Schema schema)
    : id_(next_table_id.fetch_add(1, std::memory_order_relaxed)),
      name_(std::move(name)),
      schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" + name_ +
        "' has " + std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      columns_[i].AppendNull();
      continue;
    }
    TypeId want = schema_.field(i).type;
    if (row[i].type() == want) {
      columns_[i].AppendValue(row[i]);
    } else {
      auto cast = row[i].CastTo(want);
      if (!cast.ok()) return cast.status();
      columns_[i].AppendValue(*cast);
    }
  }
  ++num_rows_;
  InvalidateDerived();
  return Status::OK();
}

Status Table::AppendChunk(const Chunk& chunk) {
  if (chunk.num_columns() != columns_.size()) {
    return Status::InvalidArgument("chunk column count mismatch for table '" +
                                   name_ + "'");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (chunk.column(c).type() != columns_[c].type()) {
      return Status::TypeError(
          "chunk column " + std::to_string(c) + " has type " +
          std::string(TypeIdToString(chunk.column(c).type())) +
          ", table expects " +
          std::string(TypeIdToString(columns_[c].type())));
    }
  }
  size_t rows = chunk.num_rows();
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnVector& src = chunk.column(c);
    columns_[c].Reserve(columns_[c].size() + rows);
    for (size_t r = 0; r < rows; ++r) columns_[c].AppendFrom(src, r);
  }
  num_rows_ += rows;
  InvalidateDerived();
  return Status::OK();
}

Status Table::RetainRows(const std::vector<uint32_t>& keep) {
  for (size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] >= num_rows_ || (i > 0 && keep[i] <= keep[i - 1])) {
      return Status::InvalidArgument(
          "RetainRows requires ascending in-range row ids");
    }
  }
  for (auto& col : columns_) {
    col = col.Gather(keep);
  }
  num_rows_ = keep.size();
  InvalidateDerived();
  return Status::OK();
}

Status Table::SetCell(size_t row, size_t column, const Value& v) {
  if (row >= num_rows_ || column >= columns_.size()) {
    return Status::OutOfRange("SetCell target out of range");
  }
  Value coerced = v;
  TypeId want = schema_.field(column).type;
  if (!v.is_null() && v.type() != want) {
    AGORA_ASSIGN_OR_RETURN(coerced, v.CastTo(want));
  }
  columns_[column].SetValue(row, coerced);
  InvalidateDerived();
  return Status::OK();
}

Chunk Table::GetChunk(size_t start, size_t count,
                      const std::vector<size_t>& projection) const {
  Chunk out;
  size_t end = std::min(start + count, num_rows_);
  size_t n = end > start ? end - start : 0;
  if (projection.empty()) {
    for (const auto& col : columns_) {
      out.AddColumn(col.Slice(start, n));
    }
  } else {
    for (size_t c : projection) {
      AGORA_DCHECK(c < columns_.size());
      out.AddColumn(columns_[c].Slice(start, n));
    }
  }
  out.SetExplicitRowCount(n);
  return out;
}

Chunk Table::GetChunkView(const std::vector<size_t>& projection) const {
  Chunk out;
  if (projection.empty()) {
    for (const auto& col : columns_) {
      out.AddColumn(col);  // shared buffer, O(1)
    }
  } else {
    for (size_t c : projection) {
      AGORA_DCHECK(c < columns_.size());
      out.AddColumn(columns_[c]);
    }
  }
  out.SetExplicitRowCount(num_rows_);
  return out;
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.GetValue(row));
  return out;
}

void Table::BuildZoneMaps() {
  // Build off to the side: concurrent scans keep pruning against their
  // snapshot (or none) until the finished set is swapped in below.
  auto maps = std::make_shared<ZoneMapSet>();
  size_t num_blocks = (num_rows_ + kChunkSize - 1) / kChunkSize;
  for (size_t c = 0; c < columns_.size(); ++c) {
    TypeId t = columns_[c].type();
    if (!IsNumeric(t) && t != TypeId::kBool) continue;
    ZoneMap zm;
    zm.blocks.resize(num_blocks);
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t begin = b * kChunkSize;
      size_t end = std::min(begin + kChunkSize, num_rows_);
      ZoneMapEntry& e = zm.blocks[b];
      for (size_t r = begin; r < end; ++r) {
        if (columns_[c].IsNull(r)) continue;
        double v = columns_[c].GetNumeric(r);
        if (!e.has_values) {
          e.min = e.max = v;
          e.has_values = true;
        } else {
          e.min = std::min(e.min, v);
          e.max = std::max(e.max, v);
        }
      }
    }
    maps->emplace(c, std::move(zm));
  }
  MutexLock lock(index_mu_);
  zone_maps_ = std::move(maps);
}

bool Table::HasZoneMaps() const {
  MutexLock lock(index_mu_);
  return zone_maps_ != nullptr && !zone_maps_->empty();
}

std::shared_ptr<const ZoneMapSet> Table::zone_maps() const {
  MutexLock lock(index_mu_);
  return zone_maps_;
}

std::shared_ptr<const ZoneMap> Table::GetZoneMap(size_t column) const {
  std::shared_ptr<const ZoneMapSet> maps = zone_maps();
  if (maps == nullptr) return nullptr;
  auto it = maps->find(column);
  if (it == maps->end()) return nullptr;
  // Aliasing constructor: the handle keeps the whole set alive.
  return std::shared_ptr<const ZoneMap>(std::move(maps), &it->second);
}

Status Table::BuildHashIndex(const std::string& index_name, size_t column) {
  if (column >= columns_.size()) {
    return Status::InvalidArgument("index column out of range");
  }
  // Build off to the side first: concurrent readers keep probing the old
  // snapshot (or none) until the finished index is swapped in below.
  auto index = std::make_shared<HashIndex>(index_name, column);
  const ColumnVector& col = columns_[column];
  for (size_t r = 0; r < num_rows_; ++r) {
    if (col.IsNull(r)) continue;
    index->Insert(col.HashRow(r), static_cast<int64_t>(r));
  }
  MutexLock lock(index_mu_);
  // Replace an existing index on the same column.
  for (auto& idx : indexes_) {
    if (idx->column() == column) {
      idx = std::move(index);
      return Status::OK();
    }
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

std::shared_ptr<const HashIndex> Table::GetHashIndex(size_t column) const {
  MutexLock lock(index_mu_);
  for (const auto& idx : indexes_) {
    if (idx->column() == column) return idx;
  }
  return nullptr;
}

void Table::InvalidateDerived() {
  MutexLock lock(index_mu_);
  zone_maps_.reset();
  indexes_.clear();
}

std::shared_ptr<Table> Table::SortedCopy(const std::string& new_name,
                                         size_t column) const {
  AGORA_CHECK(column < columns_.size());
  std::vector<uint32_t> perm(num_rows_);
  std::iota(perm.begin(), perm.end(), 0);
  const ColumnVector& key = columns_[column];
  std::stable_sort(perm.begin(), perm.end(),
                   [&key](uint32_t a, uint32_t b) {
                     return key.CompareRows(a, key, b) < 0;
                   });
  auto out = std::make_shared<Table>(new_name, schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out->columns_[c] = columns_[c].Gather(perm);
  }
  out->num_rows_ = num_rows_;
  return out;
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col.MemoryBytes();
  return bytes;
}

}  // namespace agora
