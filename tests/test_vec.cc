// Tests for distance kernels, exact k-NN and the IVF-Flat index.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/distance.h"
#include "vec/flat_index.h"
#include "vec/ivf_index.h"

namespace agora {
namespace {

TEST(DistanceTest, L2Squared) {
  Vecf a = {1, 2, 3}, b = {4, 6, 3};
  EXPECT_FLOAT_EQ(L2Squared(a.data(), b.data(), 3), 9 + 16 + 0);
}

TEST(DistanceTest, InnerProduct) {
  Vecf a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_FLOAT_EQ(InnerProduct(a.data(), b.data(), 3), 32);
}

TEST(DistanceTest, CosineSimilarity) {
  Vecf a = {1, 0}, b = {0, 1}, c = {2, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a.data(), b.data(), 2), 0);
  EXPECT_FLOAT_EQ(CosineSimilarity(a.data(), c.data(), 2), 1);
  Vecf zero = {0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a.data(), zero.data(), 2), 0);
}

TEST(DistanceTest, MetricDistanceOrdersConsistently) {
  // For every metric, the closer pair must have smaller MetricDistance.
  Vecf q = {1, 1}, near = {1.1f, 0.9f}, far = {-3, 4};
  for (Metric m : {Metric::kL2, Metric::kIp, Metric::kCosine}) {
    if (m == Metric::kIp) continue;  // IP is not a proper distance
    EXPECT_LT(MetricDistance(m, q.data(), near.data(), 2),
              MetricDistance(m, q.data(), far.data(), 2));
  }
}

TEST(FlatIndexTest, ExactNearestNeighbors) {
  FlatIndex index(2);
  ASSERT_TRUE(index.Add(0, {0, 0}).ok());
  ASSERT_TRUE(index.Add(1, {1, 0}).ok());
  ASSERT_TRUE(index.Add(2, {5, 5}).ok());
  auto result = index.Search({0.4f, 0}, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].id, 0);
  EXPECT_EQ((*result)[1].id, 1);
}

TEST(FlatIndexTest, DimensionMismatchRejected) {
  FlatIndex index(3);
  EXPECT_EQ(index.Add(0, {1, 2}).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(index.Add(0, {1, 2, 3}).ok());
  EXPECT_FALSE(index.Search({1, 2}, 1).ok());
}

TEST(FlatIndexTest, FilteredSearchSkipsDisallowed) {
  FlatIndex index(1);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Add(i, {static_cast<float>(i)}).ok());
  }
  auto result = index.SearchFiltered(
      {0.0f}, 3, [](int64_t id) { return id % 2 == 1; });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0].id, 1);
  EXPECT_EQ((*result)[1].id, 3);
  EXPECT_EQ((*result)[2].id, 5);
}

TEST(FlatIndexTest, KLargerThanIndexReturnsAll) {
  FlatIndex index(1);
  ASSERT_TRUE(index.Add(0, {0.0f}).ok());
  auto result = index.Search({0.0f}, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

class IvfTest : public ::testing::Test {
 protected:
  // Clustered data: 4 well-separated clusters of 250 points in 8d.
  void SetUp() override {
    Rng rng(123);
    std::vector<Vecf> centers;
    for (int c = 0; c < 4; ++c) {
      Vecf center(8);
      for (float& x : center) {
        x = static_cast<float>(rng.Gaussian()) * 20.0f;
      }
      centers.push_back(center);
    }
    for (int64_t i = 0; i < 1000; ++i) {
      Vecf v(8);
      const Vecf& center = centers[static_cast<size_t>(i) % 4];
      for (size_t d = 0; d < 8; ++d) {
        v[d] = center[d] + static_cast<float>(rng.Gaussian());
      }
      data_.push_back(std::move(v));
    }
  }

  std::vector<Vecf> data_;
};

TEST_F(IvfTest, TrainAddSearch) {
  IvfOptions options;
  options.nlist = 16;
  options.nprobe = 4;
  IvfFlatIndex index(8, options);
  EXPECT_FALSE(index.trained());
  EXPECT_EQ(index.Add(0, data_[0]).code(), StatusCode::kInternal);

  ASSERT_TRUE(index.Train(data_).ok());
  EXPECT_TRUE(index.trained());
  for (size_t i = 0; i < data_.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data_[i]).ok());
  }
  EXPECT_EQ(index.size(), data_.size());

  auto result = index.Search(data_[42], 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  EXPECT_EQ((*result)[0].id, 42);  // the query itself is its own 1-NN
}

TEST_F(IvfTest, RecallImprovesWithProbesAndReachesOneAtFullProbe) {
  IvfOptions options;
  options.nlist = 16;
  IvfFlatIndex index(8, options);
  ASSERT_TRUE(index.Train(data_).ok());
  FlatIndex exact(8);
  for (size_t i = 0; i < data_.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data_[i]).ok());
    ASSERT_TRUE(exact.Add(static_cast<int64_t>(i), data_[i]).ok());
  }
  Rng rng(9);
  double recall1 = 0, recall4 = 0, recall_full = 0;
  const int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    Vecf query = data_[static_cast<size_t>(rng.Uniform(0, 999))];
    for (float& x : query) x += static_cast<float>(rng.Gaussian()) * 0.1f;
    auto truth = exact.Search(query, 10);
    ASSERT_TRUE(truth.ok());
    auto a1 = index.SearchWithProbes(query, 10, 1);
    auto a4 = index.SearchWithProbes(query, 10, 4);
    auto all = index.SearchWithProbes(query, 10, 16);
    ASSERT_TRUE(a1.ok() && a4.ok() && all.ok());
    recall1 += RecallAtK(*truth, *a1);
    recall4 += RecallAtK(*truth, *a4);
    recall_full += RecallAtK(*truth, *all);
  }
  recall1 /= kQueries;
  recall4 /= kQueries;
  recall_full /= kQueries;
  EXPECT_LE(recall1, recall4 + 1e-9);
  EXPECT_DOUBLE_EQ(recall_full, 1.0);  // probing all lists is exact
  EXPECT_GT(recall4, 0.5);
}

TEST_F(IvfTest, AllVectorsLandInExactlyOneList) {
  IvfOptions options;
  options.nlist = 8;
  IvfFlatIndex index(8, options);
  ASSERT_TRUE(index.Train(data_).ok());
  for (size_t i = 0; i < data_.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data_[i]).ok());
  }
  size_t total = 0;
  for (size_t l = 0; l < 8; ++l) total += index.ListSize(l);
  EXPECT_EQ(total, data_.size());
}

TEST_F(IvfTest, NlistClampedToSampleSize) {
  IvfOptions options;
  options.nlist = 4096;  // more lists than points
  IvfFlatIndex index(8, options);
  std::vector<Vecf> tiny(data_.begin(), data_.begin() + 10);
  ASSERT_TRUE(index.Train(tiny).ok());
  EXPECT_EQ(index.options().nlist, 10u);
}

TEST_F(IvfTest, EmptyTrainRejected) {
  IvfFlatIndex index(8, {});
  EXPECT_EQ(index.Train({}).code(), StatusCode::kInvalidArgument);
}

// Property sweep: recall at k for several (nlist, nprobe) pairs is within
// [0, 1] and monotone-ish in nprobe.
class IvfRecallSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(IvfRecallSweep, RecallBoundsHold) {
  auto [nlist, nprobe] = GetParam();
  Rng rng(77);
  std::vector<Vecf> data;
  for (int i = 0; i < 400; ++i) {
    Vecf v(4);
    for (float& x : v) x = static_cast<float>(rng.Gaussian());
    data.push_back(std::move(v));
  }
  IvfOptions options;
  options.nlist = nlist;
  options.nprobe = nprobe;
  IvfFlatIndex index(4, options);
  ASSERT_TRUE(index.Train(data).ok());
  FlatIndex exact(4);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data[i]).ok());
    ASSERT_TRUE(exact.Add(static_cast<int64_t>(i), data[i]).ok());
  }
  Vecf query(4, 0.25f);
  auto truth = exact.Search(query, 10);
  auto approx = index.Search(query, 10);
  ASSERT_TRUE(truth.ok() && approx.ok());
  double recall = RecallAtK(*truth, *approx);
  EXPECT_GE(recall, 0.0);
  EXPECT_LE(recall, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IvfRecallSweep,
    ::testing::Values(std::make_tuple(4, 1), std::make_tuple(8, 2),
                      std::make_tuple(16, 4), std::make_tuple(16, 16),
                      std::make_tuple(32, 8)));

}  // namespace
}  // namespace agora
