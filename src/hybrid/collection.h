#ifndef AGORA_HYBRID_COLLECTION_H_
#define AGORA_HYBRID_COLLECTION_H_

#include <memory>
#include <string>
#include <vector>

#include <unordered_map>

#include "common/result.h"
#include "engine/database.h"
#include "fts/inverted_index.h"
#include "search/search_types.h"
#include "storage/table.h"
#include "vec/flat_index.h"
#include "vec/ivf_index.h"

namespace agora {

/// One document in a hybrid collection: free text (keyword-searchable), a
/// dense embedding (vector-searchable) and structured attributes
/// (SQL-filterable). This is the workload shape the SIGMOD'25 panel calls
/// out: "solutions are crappy when you combine diverse workloads like
/// vectors, keywords, and relational queries".
struct HybridDoc {
  std::string text;
  Vecf embedding;
  std::vector<Value> attrs;  // must match the collection's attribute schema
};

/// A hybrid query: any subset of {keywords, vector, filter} may be set.
/// ScoreFusion / HybridStrategy / HybridExecOptions / ScoredDoc live in
/// search/search_types.h, shared with the declarative pipeline.
struct HybridQuery {
  std::string keywords;     // empty = no keyword component
  Vecf embedding;           // empty = no vector component
  std::string filter_sql;   // SQL boolean over attributes; empty = none
  size_t k = 10;
  double keyword_weight = 0.5;
  double vector_weight = 0.5;
  ScoreFusion fusion = ScoreFusion::kWeightedSum;
  size_t rrf_k = 60;
};

/// Counters describing how a hybrid query executed.
struct HybridQueryStats {
  std::string strategy;            // "prefilter" / "postfilter" / "federated"
  size_t filter_rows_evaluated = 0;  // rows the SQL predicate touched
  size_t vector_distances = 0;       // distance computations
  size_t retries = 0;                // over-fetch loop iterations
  size_t candidates = 0;             // docs considered for fusion
};

/// A collection of hybrid documents with three access paths — a columnar
/// attribute table, a BM25 inverted index and flat + IVF vector indexes —
/// and two executors over them:
///
///  * `Search` — the FUSED engine: a thin facade that builds a
///    LogicalScoreFusion plan and runs it through the embedded Database
///    (optimizer resolves pre- vs post-filtering cost-based; the
///    vectorized executor does the work).
///  * `SearchFederated` — the BOLTED-TOGETHER baseline: three independent
///    engines queried separately, intersected client-side with an
///    over-fetch loop. Deliberately mirrors gluing a vector DB, a search
///    engine and an RDBMS together.
///
/// The attribute table is registered in the embedded database as "docs"
/// with the search indexes attached under the virtual columns "text" and
/// "embedding", so `database().Execute("SELECT ... WHERE MATCH(text,...)")`
/// queries the same data declaratively. Not movable: the catalog holds
/// pointers to the index members.
class HybridCollection {
 public:
  /// `attr_schema` names the structured attributes; `dim` is the
  /// embedding dimensionality.
  HybridCollection(Schema attr_schema, size_t dim, IvfOptions ivf = {});

  /// Appends a document; returns its id (position). Embeddings must have
  /// the collection's dimensionality.
  Result<int64_t> Add(HybridDoc doc);

  /// Trains + fills the IVF index and computes attribute statistics.
  /// Call once after bulk loading (Add after Build is rejected).
  Status BuildIndexes();

  HybridCollection(const HybridCollection&) = delete;
  HybridCollection& operator=(const HybridCollection&) = delete;

  size_t size() const { return attrs_->num_rows(); }
  const Schema& attr_schema() const { return attrs_->schema(); }

  /// The embedded engine holding the "docs" table with search indexes
  /// attached; SQL hybrid queries (MATCH/KNN/score()) run against it.
  Database& database() { return db_; }

  /// Fused hybrid search.
  Result<std::vector<ScoredDoc>> Search(const HybridQuery& query,
                                        const HybridExecOptions& options = {},
                                        HybridQueryStats* stats = nullptr);

  /// Federated baseline (see class comment).
  Result<std::vector<ScoredDoc>> SearchFederated(
      const HybridQuery& query, HybridQueryStats* stats = nullptr);

  /// Exact reference result computed by brute force (tests).
  Result<std::vector<ScoredDoc>> SearchExact(const HybridQuery& query);

 private:
  /// Parses + binds `filter_sql` against the attribute schema. Results
  /// are cached per SQL string, so repeated queries skip the parser.
  Result<ExprPtr> BindFilter(const std::string& filter_sql) const;
  /// Full-table predicate bitmap. Only the federated baseline and the
  /// exact oracle use this; the fused path's bitmap lives in
  /// PhysicalHybridSearch (morsel-parallel).
  Result<std::vector<uint8_t>> EvaluateFilterBitmap(const ExprPtr& filter,
                                                    size_t* rows_evaluated);

  std::shared_ptr<Table> attrs_;
  InvertedIndex text_index_;
  FlatIndex flat_index_;
  IvfFlatIndex ivf_index_;
  std::vector<std::string> texts_;  // retained for exact rescoring
  bool built_ = false;
  Database db_;
  mutable std::unordered_map<std::string, ExprPtr> filter_cache_;
};

/// Deterministic synthetic workload for tests/benchmarks: `n` product-like
/// documents with category/price/rating attributes, bag-of-words text over
/// a topic vocabulary and topic-clustered `dim`-dimensional embeddings.
/// Queries that combine a topic keyword, a topic centroid vector and a
/// price filter then have meaningfully correlated answers.
struct SyntheticHybridData {
  std::vector<HybridDoc> docs;
  Schema attr_schema;
  /// Topic centroids usable as query embeddings.
  std::vector<Vecf> topic_centroids;
  std::vector<std::string> topic_names;
};
SyntheticHybridData MakeSyntheticHybridData(size_t n, size_t dim,
                                            size_t topics = 8,
                                            uint64_t seed = 42);

}  // namespace agora

#endif  // AGORA_HYBRID_COLLECTION_H_
