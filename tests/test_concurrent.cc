// Inter-query concurrency tests (ctest -L concurrent): N threads of
// mixed SELECTs byte-compared against serial ground truth, SELECTs
// racing catalog DDL (DROP/CREATE TABLE, CREATE INDEX rebuilds),
// metrics-counter consistency under concurrent execution, and unit
// coverage of the server's deadline-bounded reader/writer lock. The
// TSan tree race-checks this suite (ctest -L concurrent).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/query_handler.h"

namespace agora {
namespace {

// ---------------------------------------------------------------------------
// Fixture: one Database seeded with two joinable tables. All rows are
// derived from the row index, so ground truth is deterministic.

class ConcurrentQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    Run("CREATE TABLE points (id BIGINT, bucket BIGINT, weight DOUBLE, "
        "tag VARCHAR)");
    Run("CREATE TABLE buckets (id BIGINT, name VARCHAR)");
    for (int b = 0; b < 8; ++b) {
      Run("INSERT INTO buckets VALUES (" + std::to_string(b) + ", 'bucket-" +
          std::to_string(b) + "')");
    }
    // Batched inserts keep setup fast while producing a few thousand rows.
    for (int batch = 0; batch < 40; ++batch) {
      std::string sql = "INSERT INTO points VALUES ";
      for (int i = 0; i < 50; ++i) {
        int id = batch * 50 + i;
        if (i > 0) sql += ", ";
        sql += "(" + std::to_string(id) + ", " + std::to_string(id % 8) +
               ", " + std::to_string(id) + ".25, 'tag-" +
               std::to_string(id % 5) + "')";
      }
      Run(sql);
    }
  }

  QueryResult Run(const std::string& sql) {
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult();
  }

  // Renders every row (no truncation) so comparisons are byte-exact.
  std::string Render(const QueryResult& result) {
    return result.ToString(1 << 20);
  }

  std::unique_ptr<Database> db_;
};

// The core tentpole claim: N threads of mixed SELECTs produce exactly
// the bytes serial execution produces, query for query.
TEST_F(ConcurrentQueryTest, MixedSelectsMatchSerialGroundTruth) {
  const std::vector<std::string> queries = {
      "SELECT bucket, COUNT(*), SUM(weight) FROM points "
      "GROUP BY bucket ORDER BY bucket",
      "SELECT id, tag FROM points WHERE id >= 500 AND id < 560 ORDER BY id",
      "SELECT b.name, COUNT(*) FROM points p JOIN buckets b ON p.bucket = "
      "b.id GROUP BY b.name ORDER BY b.name",
      "SELECT COUNT(*) FROM points WHERE weight > 1000.0",
  };
  std::vector<std::string> expected;
  for (const std::string& q : queries) expected.push_back(Render(Run(q)));

  constexpr int kThreads = 8;
  constexpr int kIterations = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        size_t pick = static_cast<size_t>(t + i) % queries.size();
        auto result = db_->Execute(queries[pick]);
        if (!result.ok() || Render(*result) != expected[pick]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// A SELECT racing DROP TABLE + CREATE TABLE must either complete against
// the snapshot it bound (full count), see the recreated empty table
// (zero count), or fail cleanly with a binder/NotFound error. Anything
// else — a crash, a torn count, an internal error — is a bug.
TEST_F(ConcurrentQueryTest, SelectRacesDropAndRecreate) {
  Run("CREATE TABLE victim (v BIGINT)");
  std::string fill = "INSERT INTO victim VALUES (0)";
  for (int i = 1; i < 64; ++i) fill += ", (" + std::to_string(i) + ")";
  Run(fill);

  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread ddl([&] {
    for (int i = 0; i < 60; ++i) {
      auto dropped = db_->Execute("DROP TABLE victim");
      EXPECT_TRUE(dropped.ok()) << dropped.status().ToString();
      auto created = db_->Execute("CREATE TABLE victim (v BIGINT)");
      EXPECT_TRUE(created.ok()) << created.status().ToString();
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = db_->Execute("SELECT COUNT(*) FROM victim");
        if (result.ok()) {
          int64_t count = result->Get(0, 0).int64_value();
          if (count != 0 && count != 64) {
            anomalies.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (result.status().code() != StatusCode::kNotFound &&
                   result.status().code() != StatusCode::kBindError) {
          anomalies.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  ddl.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(anomalies.load(), 0);
}

// Point SELECTs (which may plan through the hash index) racing repeated
// CREATE INDEX rebuilds on the same column: every result must match
// ground truth exactly — readers probe either the old index snapshot,
// the new one, or none, and all three agree on a static table.
TEST_F(ConcurrentQueryTest, SelectRacesIndexRebuild) {
  const std::string query =
      "SELECT id, tag FROM points WHERE id = 1234 ORDER BY id";
  std::string expected = Render(Run(query));

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::thread builder([&] {
    for (int i = 0; i < 40; ++i) {
      auto built = db_->Execute("CREATE INDEX points_id ON points (id)");
      EXPECT_TRUE(built.ok()) << built.status().ToString();
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = db_->Execute(query);
        if (!result.ok() || Render(*result) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  builder.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Engine-wide counters stay exact under concurrency: queries_total
// advances by exactly one per query, statements_executed by one per
// statement, and rows_scanned_total by exactly the sum of the per-query
// stats the same executions reported.
TEST_F(ConcurrentQueryTest, MetricsCountersStayConsistent) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 10;
  const std::string query = "SELECT COUNT(*) FROM points WHERE id >= 0";

  const double queries_before = db_->metrics().CounterValue("queries_total");
  const double scanned_before =
      db_->metrics().CounterValue("rows_scanned_total");
  const int64_t statements_before = db_->statements_executed();

  std::atomic<int64_t> scanned_by_queries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto result = db_->Execute(query);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        scanned_by_queries.fetch_add(result->stats().rows_scanned,
                                     std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();

  const double executed = kThreads * kPerThread;
  EXPECT_DOUBLE_EQ(db_->metrics().CounterValue("queries_total"),
                   queries_before + executed);
  EXPECT_EQ(db_->statements_executed(),
            statements_before + static_cast<int64_t>(executed));
  EXPECT_DOUBLE_EQ(db_->metrics().CounterValue("rows_scanned_total"),
                   scanned_before +
                       static_cast<double>(scanned_by_queries.load()));
  EXPECT_EQ(db_->cumulative_stats().rows_scanned >=
                scanned_by_queries.load(),
            true);
}

// ---------------------------------------------------------------------------
// DeadlineSharedLock unit coverage.

TEST(DeadlineSharedLock, ReadersShareTheLock) {
  DeadlineSharedLock lock;
  lock.LockShared();
  // A second reader must get in while the first still holds.
  std::atomic<bool> second_in{false};
  std::thread reader([&] {
    lock.LockShared();
    second_in.store(true, std::memory_order_release);
    lock.UnlockShared();
  });
  reader.join();
  EXPECT_TRUE(second_in.load());
  lock.UnlockShared();
}

TEST(DeadlineSharedLock, WriterExcludedWhileReaderHolds) {
  DeadlineSharedLock lock;
  lock.LockShared();
  // The competing writer runs on its own thread (as in production), which
  // also keeps each thread's acquisitions balanced for the thread-safety
  // analysis.
  std::atomic<bool> writer_got_in{false};
  std::thread writer([&] {
    const bool ok = lock.TryLockUntil(std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(20));
    if (ok) {
      writer_got_in.store(true, std::memory_order_release);
      lock.Unlock();
    }
  });
  writer.join();
  EXPECT_FALSE(writer_got_in.load());
  lock.UnlockShared();
  // Free now: the exclusive side must succeed immediately.
  const bool acquired = lock.TryLockUntil(std::chrono::steady_clock::now() +
                                          std::chrono::milliseconds(20));
  EXPECT_TRUE(acquired);
  if (acquired) lock.Unlock();
}

TEST(DeadlineSharedLock, WaitingWriterBlocksNewReaders) {
  DeadlineSharedLock lock;
  lock.LockShared();
  std::thread writer([&] {
    // Blocks until the reader below releases.
    lock.Lock();
    lock.Unlock();
  });
  // Give the writer time to register its claim, then verify writer
  // preference: a new reader with a deadline times out behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<bool> late_reader_got_in{false};
  std::thread late_reader([&] {
    const bool ok =
        lock.TryLockSharedUntil(std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(20));
    if (ok) {
      late_reader_got_in.store(true, std::memory_order_release);
      lock.UnlockShared();
    }
  });
  late_reader.join();
  EXPECT_FALSE(late_reader_got_in.load());
  lock.UnlockShared();
  writer.join();
  // With the writer gone, readers get in again.
  const bool acquired =
      lock.TryLockSharedUntil(std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(20));
  EXPECT_TRUE(acquired);
  if (acquired) lock.UnlockShared();
}

TEST(DeadlineSharedLock, TimedOutWriterLeavesNoResidue) {
  DeadlineSharedLock lock;
  lock.LockShared();
  // Writer times out behind the reader...
  std::atomic<bool> writer_got_in{false};
  std::thread writer([&] {
    const bool ok = lock.TryLockUntil(std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(10));
    if (ok) {
      writer_got_in.store(true, std::memory_order_release);
      lock.Unlock();
    }
  });
  writer.join();
  EXPECT_FALSE(writer_got_in.load());
  // ...and must not leave a phantom waiting claim that blocks readers.
  std::atomic<bool> second_reader_got_in{false};
  std::thread second_reader([&] {
    const bool ok =
        lock.TryLockSharedUntil(std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(20));
    if (ok) {
      second_reader_got_in.store(true, std::memory_order_release);
      lock.UnlockShared();
    }
  });
  second_reader.join();
  EXPECT_TRUE(second_reader_got_in.load());
  lock.UnlockShared();
}

// Statement classification driving the shared-vs-exclusive choice.
TEST(IsReadOnlyStatement, ClassifiesLeadingKeyword) {
  EXPECT_TRUE(Database::IsReadOnlyStatement("SELECT 1"));
  EXPECT_TRUE(Database::IsReadOnlyStatement("  select * from t"));
  EXPECT_TRUE(Database::IsReadOnlyStatement("\n-- comment\nSELECT 1"));
  EXPECT_TRUE(Database::IsReadOnlyStatement("EXPLAIN SELECT 1"));
  EXPECT_TRUE(Database::IsReadOnlyStatement("explain analyze select 1"));
  EXPECT_TRUE(Database::IsReadOnlyStatement(
      "EXPLAIN ANALYZE\n-- comment\nSELECT 1"));
  // EXPLAIN wrapping anything but SELECT must classify as a write: the
  // parser accepts it, and routing it to the shared lock on the EXPLAIN
  // keyword alone would let the wrapped statement race readers.
  EXPECT_FALSE(Database::IsReadOnlyStatement("EXPLAIN INSERT INTO t VALUES (1)"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("explain analyze update t SET a = 1"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("EXPLAIN DROP TABLE t"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("EXPLAIN"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("EXPLAIN ANALYZE"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("INSERT INTO t VALUES (1)"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("UPDATE t SET a = 1"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("DELETE FROM t"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("CREATE TABLE t (a BIGINT)"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("DROP TABLE t"));
  EXPECT_FALSE(Database::IsReadOnlyStatement("COPY t FROM 'x.csv'"));
  EXPECT_FALSE(Database::IsReadOnlyStatement(""));
  EXPECT_FALSE(Database::IsReadOnlyStatement("   -- only a comment"));
}

// EXPLAIN on a non-SELECT must fail without executing the wrapped
// statement — the engine-side guarantee backing the classification
// above (an "explained" INSERT must never mutate storage).
TEST(IsReadOnlyStatement, ExplainNonSelectIsRejectedWithoutExecuting) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a BIGINT)").ok());
  for (const std::string& sql :
       {std::string("EXPLAIN INSERT INTO t VALUES (1)"),
        std::string("EXPLAIN ANALYZE DELETE FROM t"),
        std::string("EXPLAIN DROP TABLE t")}) {
    auto result = db.Execute(sql);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << sql;
  }
  // Nothing was inserted and the table still exists.
  auto count = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value().Get(0, 0).ToString(), "0");
}

}  // namespace
}  // namespace agora
