// Hybrid search example: one collection, three access paths — SQL
// attribute filters, BM25 keywords and vector similarity — planned and
// fused by a single engine.
//
// This is the workload the SIGMOD'25 panel says commercial stacks handle
// poorly ("solutions are crappy when you combine diverse workloads like
// vectors, keywords, and relational queries").

#include <cstdio>
#include <string>

#include "engine/database.h"
#include "hybrid/collection.h"

int main() {
  using namespace agora;

  // A small synthetic product corpus: 5000 documents over 8 topics, with
  // category/price/rating/in_stock attributes, text and 32-d embeddings.
  SyntheticHybridData data = MakeSyntheticHybridData(5000, 32);
  IvfOptions ivf;
  ivf.nlist = 32;
  ivf.nprobe = 8;
  HybridCollection collection(data.attr_schema, 32, ivf);
  for (const HybridDoc& doc : data.docs) {
    auto id = collection.Add(doc);
    if (!id.ok()) {
      std::fprintf(stderr, "add failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  if (Status s = collection.BuildIndexes(); !s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // "Find cheap, in-stock documents about gardening similar to this
  // embedding" — keywords + vector + SQL filter in one query.
  HybridQuery query;
  query.keywords = "gardening";
  query.embedding = data.topic_centroids[4];  // the gardening centroid
  query.filter_sql = "price < 25 AND in_stock = TRUE";
  query.k = 5;

  HybridQueryStats stats;
  auto results = collection.Search(query, {}, &stats);
  if (!results.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::printf("Fused hybrid search (strategy chosen: %s)\n",
              stats.strategy.c_str());
  std::printf("%-6s %-8s %-10s %-10s\n", "doc", "fused", "bm25", "vector");
  for (const ScoredDoc& doc : *results) {
    std::printf("%-6lld %-8.4f %-10.4f %-10.4f\n",
                static_cast<long long>(doc.id), doc.score,
                doc.keyword_score, doc.vector_score);
  }
  std::printf(
      "\nwork: %zu filter rows evaluated, %zu vector distances, "
      "%zu over-fetch retries\n",
      stats.filter_rows_evaluated, stats.vector_distances, stats.retries);

  // The same query through the "bolted-together" path (three independent
  // engines + client-side intersection) for comparison.
  HybridQueryStats federated_stats;
  auto federated = collection.SearchFederated(query, &federated_stats);
  std::printf(
      "\nFederated baseline: %zu filter rows, %zu vector distances, "
      "%zu retries — the over-fetch loop is the price of gluing three "
      "systems together.\n",
      federated_stats.filter_rows_evaluated,
      federated_stats.vector_distances, federated_stats.retries);

  // The same search is first-class SQL: MATCH/KNN are WHERE conjuncts,
  // score() is the fused rank, and EXPLAIN shows the strategy the
  // cost-based optimizer picked.
  std::string vec = "[";
  for (size_t i = 0; i < query.embedding.size(); ++i) {
    if (i > 0) vec += ", ";
    vec += std::to_string(query.embedding[i]);
  }
  vec += "]";
  std::string sql =
      "SELECT rowid, price, score() FROM docs "
      "WHERE price < 25 AND in_stock = TRUE "
      "AND MATCH(text, 'gardening') AND KNN(embedding, " + vec + ", 5) "
      "ORDER BY score() DESC LIMIT 5";
  Database& db = collection.database();
  auto plan = db.Explain(sql);
  auto sql_result = db.Execute(sql);
  if (!plan.ok() || !sql_result.ok()) {
    std::fprintf(stderr, "sql failed: %s\n",
                 (plan.ok() ? sql_result.status() : plan.status())
                     .ToString().c_str());
    return 1;
  }
  std::printf("\nThe same query as declarative SQL:\n  %s\n\nEXPLAIN:\n%s\n%s",
              sql.substr(0, 96).append("...").c_str(), plan->c_str(),
              sql_result->ToString().c_str());
  return 0;
}
