// Parallel-vs-serial equivalence for morsel-driven execution: the same
// query must return byte-identical results — including floating-point
// aggregate rounding and ExecStats counters — at every worker count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "engine/database.h"
#include "tpch/tpch.h"

namespace agora {
namespace {

class ParallelExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The container may expose a single core; force a multi-threaded
    // global pool so parallel scheduling is actually exercised. Must run
    // before the first query lazily constructs ThreadPool::Global().
    setenv("AGORA_THREADS", "4", 0);
    db_ = new Database();
    TpchOptions options;
    options.scale_factor = 0.002;  // ~12k lineitems: above the 8192 floor
    Status s = GenerateTpch(options, &db_->catalog());
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static QueryResult RunAt(int threads, const std::string& sql) {
    db_->set_execution_threads(threads);
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    db_->set_execution_threads(0);
    return result.ok() ? std::move(*result) : QueryResult();
  }

  /// Requires cell-exact equality, with doubles compared bitwise-style
  /// via operator== (no tolerance: the determinism contract is exact).
  static void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                              const std::string& label) {
    ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
    ASSERT_EQ(a.num_columns(), b.num_columns()) << label;
    for (size_t r = 0; r < a.num_rows(); ++r) {
      for (size_t c = 0; c < a.num_columns(); ++c) {
        Value va = a.Get(r, c);
        Value vb = b.Get(r, c);
        ASSERT_EQ(va.is_null(), vb.is_null())
            << label << " (" << r << "," << c << ")";
        if (va.is_null()) continue;
        if (va.type() == TypeId::kDouble) {
          EXPECT_EQ(va.AsDouble(), vb.AsDouble())
              << label << " (" << r << "," << c << ")";
        } else {
          EXPECT_EQ(va.Compare(vb), 0)
              << label << " (" << r << "," << c << "): " << va.ToString()
              << " vs " << vb.ToString();
        }
      }
    }
  }

  static void ExpectStatsIdentical(const ExecStats& a, const ExecStats& b,
                                   const std::string& label) {
    EXPECT_EQ(a.rows_scanned, b.rows_scanned) << label;
    EXPECT_EQ(a.blocks_read, b.blocks_read) << label;
    EXPECT_EQ(a.blocks_skipped, b.blocks_skipped) << label;
    EXPECT_EQ(a.rows_joined, b.rows_joined) << label;
    EXPECT_EQ(a.probe_calls, b.probe_calls) << label;
    EXPECT_EQ(a.rows_aggregated, b.rows_aggregated) << label;
    EXPECT_EQ(a.rows_sorted, b.rows_sorted) << label;
    EXPECT_EQ(a.bytes_materialized, b.bytes_materialized) << label;
    EXPECT_EQ(a.chunks_emitted, b.chunks_emitted) << label;
  }

  static void ExpectThreadInvariant(const std::string& name,
                                    const std::string& sql) {
    QueryResult serial = RunAt(1, sql);
    ASSERT_GT(serial.num_rows(), 0u) << name << " returned nothing";
    for (int threads : {2, 8}) {
      QueryResult parallel = RunAt(threads, sql);
      std::string label = name + " @" + std::to_string(threads) + "t";
      ExpectIdentical(serial, parallel, label);
      ExpectStatsIdentical(serial.stats(), parallel.stats(), label);
    }
  }

  static Database* db_;
};

Database* ParallelExecTest::db_ = nullptr;

TEST_F(ParallelExecTest, Q1AggregateThreadInvariant) {
  ExpectThreadInvariant("Q1", TpchQ1());
}

TEST_F(ParallelExecTest, Q3JoinTopKThreadInvariant) {
  ExpectThreadInvariant("Q3", TpchQ3());
}

TEST_F(ParallelExecTest, Q5SixWayJoinThreadInvariant) {
  ExpectThreadInvariant("Q5", TpchQ5());
}

TEST_F(ParallelExecTest, Q6ScanFilterAggregateThreadInvariant) {
  ExpectThreadInvariant("Q6", TpchQ6());
}

TEST_F(ParallelExecTest, Q10JoinGroupTopKThreadInvariant) {
  ExpectThreadInvariant("Q10", TpchQ10());
}

TEST_F(ParallelExecTest, Q12CaseAggregateThreadInvariant) {
  ExpectThreadInvariant("Q12", TpchQ12());
}

TEST_F(ParallelExecTest, Q14RatioAggregateThreadInvariant) {
  ExpectThreadInvariant("Q14", TpchQ14());
}

TEST_F(ParallelExecTest, PipelineRootScanFilterThreadInvariant) {
  // Whole plan is pipeline-shaped: the root collector itself runs through
  // the morsel path. Output row order must match the serial table order.
  ExpectThreadInvariant(
      "scan-filter",
      "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem "
      "WHERE l_quantity < 10");
}

TEST_F(ParallelExecTest, DistinctAggregateThreadInvariant) {
  // DISTINCT aggregates stay on the serial accumulate path (a Gather
  // exchange parallelizes their input); results must still be invariant.
  ExpectThreadInvariant(
      "count-distinct",
      "SELECT COUNT(DISTINCT l_suppkey), COUNT(*) FROM lineitem");
}

TEST_F(ParallelExecTest, OrderByWithoutLimitThreadInvariant) {
  ExpectThreadInvariant(
      "sort",
      "SELECT l_orderkey, l_linenumber FROM lineitem "
      "WHERE l_discount > 0.05 ORDER BY l_orderkey, l_linenumber");
}

TEST_F(ParallelExecTest, ParallelMatchesSerialModeWithinTolerance) {
  // The morsel path may round FP sums differently than the legacy serial
  // accumulation (different addition tree), so compare a parallel-enabled
  // engine against an enable_parallel=false engine with a relative bound.
  DatabaseOptions serial_options;
  serial_options.physical.enable_parallel = false;
  Database serial_db(serial_options);
  TpchOptions tpch;
  tpch.scale_factor = 0.002;
  ASSERT_TRUE(GenerateTpch(tpch, &serial_db.catalog()).ok());

  auto serial = serial_db.Execute(TpchQ1());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  QueryResult parallel = RunAt(8, TpchQ1());
  ASSERT_EQ(serial->num_rows(), parallel.num_rows());
  ASSERT_EQ(serial->num_columns(), parallel.num_columns());
  for (size_t r = 0; r < parallel.num_rows(); ++r) {
    for (size_t c = 0; c < parallel.num_columns(); ++c) {
      Value vs = serial->Get(r, c);
      Value vp = parallel.Get(r, c);
      ASSERT_EQ(vs.is_null(), vp.is_null());
      if (vs.is_null()) continue;
      if (vs.type() == TypeId::kDouble) {
        double s = vs.AsDouble();
        EXPECT_NEAR(vp.AsDouble(), s, 1e-9 * std::max(1.0, std::abs(s)));
      } else {
        EXPECT_EQ(vs.Compare(vp), 0);
      }
    }
  }
}

TEST_F(ParallelExecTest, SmallTableStaysEligibleInvariant) {
  // Tables below parallel_min_rows take the serial path at every thread
  // count — trivially invariant, but guard the routing anyway.
  ExpectThreadInvariant(
      "small-table",
      "SELECT n_regionkey, COUNT(*) FROM nation GROUP BY n_regionkey");
}

}  // namespace
}  // namespace agora
