# Empty compiler generated dependencies file for test_sql_engine.
# This may be replaced when dependencies are built.
