#include "search/fusion.h"

#include <algorithm>
#include <unordered_map>

namespace agora {

std::string_view VectorIndexChoiceToString(VectorIndexChoice choice) {
  switch (choice) {
    case VectorIndexChoice::kUnchosen:
      return "unchosen";
    case VectorIndexChoice::kFlat:
      return "flat";
    case VectorIndexChoice::kIvf:
      return "ivf";
    case VectorIndexChoice::kHnsw:
      return "hnsw";
  }
  return "?";
}

std::string_view HybridStrategyToString(HybridStrategy strategy) {
  switch (strategy) {
    case HybridStrategy::kAuto:
      return "auto";
    case HybridStrategy::kPreFilter:
      return "prefilter";
    case HybridStrategy::kPostFilter:
      return "postfilter";
  }
  return "?";
}

double DistanceToSimilarity(Metric metric, float distance) {
  switch (metric) {
    case Metric::kL2:
      return 1.0 / (1.0 + static_cast<double>(distance));
    case Metric::kIp:
    case Metric::kCosine:
      return static_cast<double>(-distance);
  }
  return 0;
}

std::vector<ScoredDoc> FuseScores(const FusionParams& params, Metric metric,
                                  const std::vector<SearchHit>& keyword_hits,
                                  const std::vector<Neighbor>& vector_hits,
                                  size_t k) {
  struct Partial {
    double kw = 0, vec = 0;
    size_t kw_rank = 0, vec_rank = 0;  // 1-based; 0 = absent
  };
  std::unordered_map<int64_t, Partial> partials;
  double kw_min = 0, kw_max = 0;
  for (size_t r = 0; r < keyword_hits.size(); ++r) {
    Partial& p = partials[keyword_hits[r].doc_id];
    p.kw = keyword_hits[r].score;
    p.kw_rank = r + 1;
    if (r == 0) {
      kw_min = kw_max = p.kw;
    } else {
      kw_min = std::min(kw_min, p.kw);
      kw_max = std::max(kw_max, p.kw);
    }
  }
  double v_min = 0, v_max = 0;
  for (size_t r = 0; r < vector_hits.size(); ++r) {
    Partial& p = partials[vector_hits[r].id];
    p.vec = DistanceToSimilarity(metric, vector_hits[r].distance);
    p.vec_rank = r + 1;
    double sim = p.vec;
    if (r == 0) {
      v_min = v_max = sim;
    } else {
      v_min = std::min(v_min, sim);
      v_max = std::max(v_max, sim);
    }
  }

  std::vector<ScoredDoc> out;
  out.reserve(partials.size());
  for (const auto& [id, p] : partials) {
    double score = 0;
    if (params.fusion == ScoreFusion::kRrf) {
      if (p.kw_rank > 0) {
        score += params.keyword_weight /
                 static_cast<double>(params.rrf_k + p.kw_rank);
      }
      if (p.vec_rank > 0) {
        score += params.vector_weight /
                 static_cast<double>(params.rrf_k + p.vec_rank);
      }
    } else {
      double nk = 0, nv = 0;
      if (p.kw_rank > 0) {
        nk = kw_max > kw_min ? (p.kw - kw_min) / (kw_max - kw_min) : 1.0;
      }
      if (p.vec_rank > 0) {
        nv = v_max > v_min ? (p.vec - v_min) / (v_max - v_min) : 1.0;
      }
      score = params.keyword_weight * nk + params.vector_weight * nv;
    }
    out.push_back(ScoredDoc{id, score, p.kw, p.vec});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace agora
