#include "storage/chunk_verify.h"

#include <string>

#include "types/type.h"

namespace agora {
namespace {

std::string Prefix(std::string_view op_name) {
  return "chunk verification failed after " + std::string(op_name) + ": ";
}

}  // namespace

Status VerifyChunk(const Chunk& chunk, const Schema& schema,
                   std::string_view op_name, bool done) {
  if (schema.num_fields() == 0) {
    if (chunk.num_columns() != 0) {
      return Status::Internal(Prefix(op_name) +
                              "zero-field schema but chunk carries " +
                              std::to_string(chunk.num_columns()) +
                              " columns");
    }
    return Status::OK();
  }
  if (chunk.num_columns() == 0) {
    // Default-constructed chunks are the end-of-stream sentinel.
    if (!done) {
      return Status::Internal(Prefix(op_name) +
                              "columnless chunk before end of stream");
    }
    return Status::OK();
  }
  if (chunk.num_columns() != schema.num_fields()) {
    return Status::Internal(
        Prefix(op_name) + "chunk has " + std::to_string(chunk.num_columns()) +
        " columns but the operator schema declares " +
        std::to_string(schema.num_fields()));
  }
  size_t rows = chunk.num_rows();
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    const ColumnVector& col = chunk.column(c);
    if (col.type() != schema.field(c).type) {
      return Status::Internal(
          Prefix(op_name) + "column " + std::to_string(c) + " has type " +
          std::string(TypeIdToString(col.type())) + " but the schema field '" +
          schema.field(c).name + "' declares " +
          std::string(TypeIdToString(schema.field(c).type)));
    }
    Status consistent = col.CheckConsistency();
    if (!consistent.ok()) {
      return Status::Internal(Prefix(op_name) + "column " + std::to_string(c) +
                              ": " + consistent.message());
    }
    if (col.size() != rows) {
      return Status::Internal(
          Prefix(op_name) + "column " + std::to_string(c) + " has " +
          std::to_string(col.size()) + " rows but column 0 has " +
          std::to_string(rows));
    }
  }
  if (rows == 0 && !done) {
    return Status::Internal(
        Prefix(op_name) +
        "empty chunk without done (producer protocol violation)");
  }
  return Status::OK();
}

Status VerifySelection(const std::vector<uint32_t>& sel, size_t input_rows,
                       std::string_view op_name) {
  for (size_t i = 0; i < sel.size(); ++i) {
    if (sel[i] >= input_rows) {
      return Status::Internal(
          "selection verification failed in " + std::string(op_name) +
          ": index " + std::to_string(sel[i]) + " at position " +
          std::to_string(i) + " exceeds input row count " +
          std::to_string(input_rows));
    }
  }
  return Status::OK();
}

}  // namespace agora
