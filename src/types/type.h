#ifndef AGORA_TYPES_TYPE_H_
#define AGORA_TYPES_TYPE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace agora {

/// Logical column types supported by the engine.
///
/// Physical representation:
///   kBool   -> uint8_t (0/1)
///   kInt64  -> int64_t
///   kDouble -> double
///   kString -> std::string
///   kDate   -> int64_t (days since 1970-01-01)
enum class TypeId : uint8_t {
  kInvalid = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Stable name for `t` ("BOOLEAN", "BIGINT", "DOUBLE", "VARCHAR", "DATE").
std::string_view TypeIdToString(TypeId t);

/// Parses a SQL type name (case-insensitive; accepts common aliases such as
/// INT/INTEGER/BIGINT, FLOAT/REAL/DOUBLE, TEXT/VARCHAR/STRING).
/// Returns kInvalid if unrecognized.
TypeId TypeIdFromString(std::string_view name);

/// True for kInt64, kDouble and kDate (types with a numeric ordering that
/// participates in arithmetic).
inline bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kDate;
}

/// Result type of arithmetic between `a` and `b`; kInvalid when the
/// combination is not allowed.
TypeId CommonNumericType(TypeId a, TypeId b);

/// True if a value of `from` may be implicitly coerced to `to`
/// (int64 -> double, date -> int64, identity).
bool ImplicitlyCoercible(TypeId from, TypeId to);

/// Converts days-since-epoch to "YYYY-MM-DD".
std::string DateToString(int64_t days);

/// Parses "YYYY-MM-DD" into days-since-epoch. Returns false on malformed
/// input.
bool ParseDate(std::string_view s, int64_t* days_out);

/// Builds days-since-epoch from a calendar date (proleptic Gregorian).
int64_t MakeDate(int year, int month, int day);

/// Calendar year of a days-since-epoch date.
int YearOfDate(int64_t days);
/// Calendar month (1-12) of a days-since-epoch date.
int MonthOfDate(int64_t days);

}  // namespace agora

#endif  // AGORA_TYPES_TYPE_H_
