#include "orm/orm.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace agora {

const Value& Entity::Get(const std::string& column) const {
  auto it = fields_.find(column);
  AGORA_CHECK(it != fields_.end())
      << "entity of '" << table_ << "' has no field '" << column << "'";
  return it->second;
}

std::string ValueToSqlLiteral(const Value& v) {
  if (v.is_null()) return "NULL";
  switch (v.type()) {
    case TypeId::kString: {
      std::string out = "'";
      for (char c : v.string_value()) {
        if (c == '\'') out += '\'';
        out += c;
      }
      return out + "'";
    }
    case TypeId::kDate:
      return "DATE '" + v.ToString() + "'";
    case TypeId::kBool:
      return v.bool_value() ? "TRUE" : "FALSE";
    default:
      return v.ToString();
  }
}

void OrmSession::RegisterModel(ModelDef def) {
  std::string key = ToLower(def.table);
  models_[key] = std::move(def);
}

Result<const ModelDef*> OrmSession::GetModel(const std::string& model) const {
  auto it = models_.find(ToLower(model));
  if (it == models_.end()) {
    return Status::NotFound("model '" + model + "' is not registered");
  }
  return &it->second;
}

Result<const ModelDef::HasMany*> OrmSession::GetRelation(
    const ModelDef& def, const std::string& name) const {
  for (const auto& rel : def.has_many) {
    if (EqualsIgnoreCase(rel.name, name)) return &rel;
  }
  return Status::NotFound("model '" + def.table + "' has no relation '" +
                          name + "'");
}

Result<QueryResult> OrmSession::Run(const std::string& sql) {
  ++statements_issued_;
  return db_->Execute(sql);
}

std::vector<Entity> OrmSession::ToEntities(const std::string& table,
                                           const QueryResult& result) {
  std::vector<Entity> out;
  out.reserve(result.num_rows());
  for (size_t r = 0; r < result.num_rows(); ++r) {
    std::unordered_map<std::string, Value> fields;
    for (size_t c = 0; c < result.num_columns(); ++c) {
      fields[result.schema().field(c).name] = result.Get(r, c);
    }
    out.emplace_back(table, std::move(fields));
  }
  return out;
}

Result<Entity> OrmSession::Find(const std::string& model, const Value& id) {
  AGORA_ASSIGN_OR_RETURN(const ModelDef* def, GetModel(model));
  AGORA_ASSIGN_OR_RETURN(
      QueryResult result,
      Run("SELECT * FROM " + def->table + " WHERE " + def->primary_key +
          " = " + ValueToSqlLiteral(id)));
  if (result.num_rows() == 0) {
    return Status::NotFound("no " + def->table + " row with " +
                            def->primary_key + " = " + id.ToString());
  }
  return ToEntities(def->table, result)[0];
}

Result<std::vector<Entity>> OrmSession::All(const std::string& model,
                                            const std::string& where) {
  AGORA_ASSIGN_OR_RETURN(const ModelDef* def, GetModel(model));
  std::string sql = "SELECT * FROM " + def->table;
  if (!where.empty()) sql += " WHERE " + where;
  AGORA_ASSIGN_OR_RETURN(QueryResult result, Run(sql));
  return ToEntities(def->table, result);
}

Result<std::vector<Entity>> OrmSession::Related(const Entity& parent,
                                                const std::string& relation) {
  AGORA_ASSIGN_OR_RETURN(const ModelDef* def, GetModel(parent.table()));
  AGORA_ASSIGN_OR_RETURN(const ModelDef::HasMany* rel,
                         GetRelation(*def, relation));
  const Value& key = parent.Get(def->primary_key);
  AGORA_ASSIGN_OR_RETURN(
      QueryResult result,
      Run("SELECT * FROM " + rel->child_table + " WHERE " +
          rel->foreign_key + " = " + ValueToSqlLiteral(key)));
  return ToEntities(rel->child_table, result);
}

Status OrmSession::Insert(
    const std::string& model,
    const std::unordered_map<std::string, Value>& fields) {
  AGORA_ASSIGN_OR_RETURN(const ModelDef* def, GetModel(model));
  std::string cols, vals;
  for (const auto& [column, value] : fields) {
    if (!cols.empty()) {
      cols += ", ";
      vals += ", ";
    }
    cols += column;
    vals += ValueToSqlLiteral(value);
  }
  AGORA_ASSIGN_OR_RETURN(
      QueryResult result,
      Run("INSERT INTO " + def->table + " (" + cols + ") VALUES (" + vals +
          ")"));
  (void)result;
  return Status::OK();
}

Result<std::unordered_map<std::string, std::vector<Entity>>>
OrmSession::EagerLoadChildren(const std::string& model,
                              const std::string& relation) {
  AGORA_ASSIGN_OR_RETURN(const ModelDef* def, GetModel(model));
  AGORA_ASSIGN_OR_RETURN(const ModelDef::HasMany* rel,
                         GetRelation(*def, relation));
  // One set-oriented statement for everything.
  AGORA_ASSIGN_OR_RETURN(
      QueryResult result,
      Run("SELECT * FROM " + rel->child_table + " ORDER BY " +
          rel->foreign_key));
  std::unordered_map<std::string, std::vector<Entity>> grouped;
  std::vector<Entity> children = ToEntities(rel->child_table, result);
  for (Entity& child : children) {
    std::string key = child.Get(rel->foreign_key).ToString();
    grouped[key].push_back(std::move(child));
  }
  return grouped;
}

}  // namespace agora
