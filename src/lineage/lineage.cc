#include "lineage/lineage.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "exec/physical_op.h"  // AppendKeyBytes

namespace agora {

namespace {

/// Merges two sorted-unique lineage sets.
std::vector<LineageRef> MergeLineage(const std::vector<LineageRef>& a,
                                     const std::vector<LineageRef>& b) {
  std::vector<LineageRef> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<AnnotatedRelation> LineageScan(const Table& table,
                                      const ExprPtr& predicate,
                                      bool capture) {
  AnnotatedRelation out;
  out.schema = table.schema();
  out.data = Chunk(out.schema);
  size_t n = table.num_rows();
  for (size_t start = 0; start < n; start += kChunkSize) {
    Chunk chunk = table.GetChunk(start, kChunkSize);
    size_t rows = chunk.num_rows();
    std::vector<uint32_t> sel;
    if (predicate != nullptr) {
      ColumnVector mask;
      AGORA_RETURN_IF_ERROR(predicate->Evaluate(chunk, &mask));
      for (size_t i = 0; i < rows; ++i) {
        if (!mask.IsNull(i) && mask.GetBool(i)) {
          sel.push_back(static_cast<uint32_t>(i));
        }
      }
    } else {
      sel.resize(rows);
      for (size_t i = 0; i < rows; ++i) sel[i] = static_cast<uint32_t>(i);
    }
    for (uint32_t i : sel) {
      out.data.AppendRowFrom(chunk, i);
      if (capture) {
        out.lineage.push_back(
            {LineageRef{table.name(), static_cast<int64_t>(start + i)}});
      }
    }
  }
  return out;
}

Result<AnnotatedRelation> LineageJoin(const AnnotatedRelation& left,
                                      const AnnotatedRelation& right,
                                      size_t left_col, size_t right_col,
                                      bool capture) {
  if (left_col >= left.schema.num_fields() ||
      right_col >= right.schema.num_fields()) {
    return Status::InvalidArgument("join column out of range");
  }
  AnnotatedRelation out;
  out.schema = left.schema.Concat(right.schema);
  out.data = Chunk(out.schema);

  // Build on the right side.
  std::unordered_multimap<uint64_t, size_t> table;
  const ColumnVector& rkey = right.data.column(right_col);
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (rkey.IsNull(r)) continue;
    table.emplace(rkey.HashRow(r), r);
  }
  const ColumnVector& lkey = left.data.column(left_col);
  size_t lcols = left.schema.num_fields();
  for (size_t l = 0; l < left.num_rows(); ++l) {
    if (lkey.IsNull(l)) continue;
    auto range = table.equal_range(lkey.HashRow(l));
    for (auto it = range.first; it != range.second; ++it) {
      size_t r = it->second;
      if (lkey.CompareRows(l, rkey, r) != 0) continue;
      for (size_t c = 0; c < lcols; ++c) {
        out.data.column(c).AppendFrom(left.data.column(c), l);
      }
      for (size_t c = 0; c < right.schema.num_fields(); ++c) {
        out.data.column(lcols + c).AppendFrom(right.data.column(c), r);
      }
      if (capture) {
        const std::vector<LineageRef>& ll =
            l < left.lineage.size() ? left.lineage[l]
                                    : std::vector<LineageRef>{};
        const std::vector<LineageRef>& rl =
            r < right.lineage.size() ? right.lineage[r]
                                     : std::vector<LineageRef>{};
        out.lineage.push_back(MergeLineage(ll, rl));
      }
    }
  }
  return out;
}

Result<AnnotatedRelation> LineageAggregate(
    const AnnotatedRelation& input, const std::vector<size_t>& group_cols,
    const std::vector<AggregateSpec>& aggregates, bool capture) {
  struct AggState {
    int64_t count = 0;
    double sum = 0;
    double sum_sq = 0;
    Value min_max;
    bool has_value = false;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
    std::vector<LineageRef> lineage;
  };

  // Pre-evaluate aggregate arguments over the whole input.
  std::vector<ColumnVector> arg_cols(aggregates.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    if (aggregates[a].arg != nullptr) {
      AGORA_RETURN_IF_ERROR(
          aggregates[a].arg->Evaluate(input.data, &arg_cols[a]));
    }
  }

  std::unordered_map<std::string, Group> groups;
  std::vector<Group*> ordered;
  std::string key;
  for (size_t row = 0; row < input.num_rows(); ++row) {
    key.clear();
    for (size_t c : group_cols) {
      AppendKeyBytes(input.data.column(c), row, &key);
    }
    auto [it, inserted] = groups.try_emplace(key);
    Group& group = it->second;
    if (inserted) {
      for (size_t c : group_cols) {
        group.keys.push_back(input.data.column(c).GetValue(row));
      }
      group.states.resize(aggregates.size());
      ordered.push_back(&group);
    }
    if (capture && row < input.lineage.size()) {
      // Append now, dedup once at finalize (merging per row would be
      // quadratic in the group size).
      group.lineage.insert(group.lineage.end(), input.lineage[row].begin(),
                           input.lineage[row].end());
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      AggState& state = group.states[a];
      if (aggregates[a].func == AggFunc::kCountStar) {
        state.count++;
        continue;
      }
      const ColumnVector& arg = arg_cols[a];
      if (arg.IsNull(row)) continue;
      state.has_value = true;
      switch (aggregates[a].func) {
        case AggFunc::kCount:
          state.count++;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          state.count++;
          state.sum += arg.GetNumeric(row);
          break;
        case AggFunc::kStddev:
        case AggFunc::kVariance: {
          double v = arg.GetNumeric(row);
          state.count++;
          state.sum += v;
          state.sum_sq += v * v;
          break;
        }
        case AggFunc::kMin: {
          Value v = arg.GetValue(row);
          if (state.count == 0 || v.Compare(state.min_max) < 0) {
            state.min_max = std::move(v);
          }
          state.count++;
          break;
        }
        case AggFunc::kMax: {
          Value v = arg.GetValue(row);
          if (state.count == 0 || v.Compare(state.min_max) > 0) {
            state.min_max = std::move(v);
          }
          state.count++;
          break;
        }
        case AggFunc::kCountStar:
          break;
      }
    }
  }

  AnnotatedRelation out;
  std::vector<Field> fields;
  for (size_t c : group_cols) fields.push_back(input.schema.field(c));
  for (const AggregateSpec& spec : aggregates) {
    fields.push_back(Field{spec.name, spec.result_type, true});
  }
  out.schema = Schema(std::move(fields));
  out.data = Chunk(out.schema);
  for (Group* group : ordered) {
    size_t col = 0;
    for (const Value& k : group->keys) {
      out.data.column(col++).AppendValue(k);
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggState& state = group->states[a];
      ColumnVector& target = out.data.column(col++);
      switch (aggregates[a].func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          target.AppendInt64(state.count);
          break;
        case AggFunc::kSum:
          if (!state.has_value) {
            target.AppendNull();
          } else if (aggregates[a].result_type == TypeId::kDouble) {
            target.AppendDouble(state.sum);
          } else {
            target.AppendInt64(static_cast<int64_t>(state.sum));
          }
          break;
        case AggFunc::kAvg:
          if (!state.has_value) {
            target.AppendNull();
          } else {
            target.AppendDouble(state.sum /
                                static_cast<double>(state.count));
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          if (!state.has_value) {
            target.AppendNull();
          } else {
            target.AppendValue(state.min_max);
          }
          break;
        case AggFunc::kStddev:
        case AggFunc::kVariance: {
          if (state.count < 2) {
            target.AppendNull();
            break;
          }
          double n = static_cast<double>(state.count);
          double mean = state.sum / n;
          double variance =
              std::max(0.0, (state.sum_sq - n * mean * mean) / (n - 1.0));
          target.AppendDouble(aggregates[a].func == AggFunc::kVariance
                                  ? variance
                                  : std::sqrt(variance));
          break;
        }
      }
    }
    if (capture) {
      std::sort(group->lineage.begin(), group->lineage.end());
      group->lineage.erase(
          std::unique(group->lineage.begin(), group->lineage.end()),
          group->lineage.end());
      out.lineage.push_back(std::move(group->lineage));
    }
  }
  return out;
}

Result<std::vector<LineageRef>> TraceRow(const AnnotatedRelation& relation,
                                         size_t row,
                                         const std::string& table) {
  if (row >= relation.num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range");
  }
  if (relation.lineage.empty()) {
    return Status::InvalidArgument(
        "relation has no lineage (capture was disabled)");
  }
  if (table.empty()) return relation.lineage[row];
  std::vector<LineageRef> out;
  for (const LineageRef& ref : relation.lineage[row]) {
    if (ref.table == table) out.push_back(ref);
  }
  return out;
}

}  // namespace agora
