// Observability-layer tests (ctest -L metrics): MetricsRegistry snapshot
// round-trips, MetricSpan self-time accounting, thread-count invariance
// of exported counters, EXPLAIN ANALYZE profile output and its
// no-double-count guarantee, and the docs/METRICS.md drift check.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "engine/database.h"
#include "tpch/tpch.h"

namespace agora {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CountersAndGaugesRoundTrip) {
  MetricsRegistry registry;
  registry.Add("rows_scanned_total", 100.0);
  registry.Add("rows_scanned_total", 23.0);
  registry.Add("operator_busy_seconds_total", "Scan", 0.5);
  registry.Add("operator_busy_seconds_total", "HashJoin", 0.25);
  registry.SetGauge("last_query_seconds", 0.125);
  registry.SetGauge("last_query_seconds", 0.5);  // last write wins

  EXPECT_DOUBLE_EQ(registry.CounterValue("rows_scanned_total"), 123.0);
  EXPECT_DOUBLE_EQ(
      registry.CounterValue("operator_busy_seconds_total", "Scan"), 0.5);
  EXPECT_DOUBLE_EQ(
      registry.CounterValue("operator_busy_seconds_total", "HashJoin"), 0.25);
  EXPECT_DOUBLE_EQ(registry.CounterValue("absent_total"), 0.0);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("last_query_seconds"), 0.5);

  std::vector<std::string> names = registry.Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "rows_scanned_total"),
            names.end());
  EXPECT_NE(
      std::find(names.begin(), names.end(), "operator_busy_seconds_total"),
      names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "last_query_seconds"),
            names.end());

  registry.Reset();
  EXPECT_DOUBLE_EQ(registry.CounterValue("rows_scanned_total"), 0.0);
  EXPECT_TRUE(registry.Names().empty());
}

TEST(MetricsRegistry, JsonSnapshotIsWellFormed) {
  MetricsRegistry registry;
  registry.Add("queries_total", 7.0);
  registry.Add("query_seconds_total", 1.5);
  registry.Add("operator_rows_total", "Scan", 4096.0);
  registry.SetGauge("execution_threads", 8.0);

  std::string json = registry.Snapshot(MetricsFormat::kJson);
  // Structural validity: balanced braces, no trailing comma artifacts.
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0) << json;
  }
  EXPECT_EQ(depth, 0) << json;
  EXPECT_EQ(json.find(",\n  }"), std::string::npos) << json;
  EXPECT_EQ(json.find(", }"), std::string::npos) << json;
  // Exact value round-trip through the text.
  EXPECT_NE(json.find("\"queries_total\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"query_seconds_total\": 1.5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"operator_rows_total\": {\"Scan\": 4096}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"execution_threads\": 8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
}

TEST(MetricsRegistry, PrometheusSnapshotIsWellFormed) {
  MetricsRegistry registry;
  registry.Add("queries_total", 3.0);
  registry.Add("operator_busy_seconds_total", "Scan", 0.125);
  registry.SetGauge("last_query_rows", 42.0);

  std::string text = registry.Snapshot(MetricsFormat::kPrometheus);
  EXPECT_NE(text.find("# TYPE agora_queries_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("agora_queries_total 3"), std::string::npos) << text;
  EXPECT_NE(
      text.find("agora_operator_busy_seconds_total{op=\"Scan\"} 0.125"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE agora_last_query_rows gauge"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("agora_last_query_rows 42"), std::string::npos) << text;

  // Every sample line: <name>[{op="..."}] <value> — name charset and a
  // parseable float value.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    ASSERT_EQ(name.rfind("agora_", 0), size_t{0}) << line;
    size_t err = 0;
    (void)std::stod(line.substr(space + 1), &err);
    EXPECT_EQ(space + 1 + err, line.size()) << line;
  }
}

// ---------------------------------------------------------------------------
// MetricSpan

void BusyWait(std::chrono::microseconds d) {
  auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(MetricSpan, NestedSpansRecordSelfTime) {
  std::vector<OpTiming> timings;
  MetricSpan* top = nullptr;
  {
    MetricSpan outer(&timings, &top, 0);
    outer.AddRows(10);
    {
      MetricSpan inner(&timings, &top, 1);
      inner.AddRows(4);
      BusyWait(std::chrono::microseconds(2000));
    }
    // Outer does almost nothing itself.
  }
  EXPECT_EQ(top, nullptr);  // stack fully unwound
  ASSERT_GE(timings.size(), size_t{2});
  EXPECT_EQ(timings[0].rows_out, 10);
  EXPECT_EQ(timings[0].invocations, 1);
  EXPECT_EQ(timings[1].rows_out, 4);
  EXPECT_EQ(timings[1].invocations, 1);
  // Inner did ~2ms of work; outer's SELF time excludes it entirely.
  EXPECT_GE(timings[1].busy_ns, int64_t{1'000'000});
  EXPECT_LT(timings[0].busy_ns, timings[1].busy_ns);
}

TEST(MetricSpan, DisabledSpanIsNoOp) {
  MetricSpan* top = nullptr;
  std::vector<OpTiming> timings;
  {
    MetricSpan disabled_by_id(&timings, &top, -1);
    MetricSpan disabled_by_vec(nullptr, &top, 0);
    disabled_by_id.AddRows(5);
  }
  EXPECT_TRUE(timings.empty());
  EXPECT_EQ(top, nullptr);
}

TEST(MetricSpan, AddChildTimeSubtractsExternalWork) {
  std::vector<OpTiming> timings;
  MetricSpan* top = nullptr;
  {
    MetricSpan span(&timings, &top, 0);
    BusyWait(std::chrono::microseconds(1000));
    // Pretend a parallel section did the last ~1ms on worker threads.
    span.AddChildTime(50'000'000);  // far more than elapsed: clamps to 0
  }
  ASSERT_EQ(timings.size(), size_t{1});
  EXPECT_EQ(timings[0].busy_ns, 0);
}

// ---------------------------------------------------------------------------
// Engine integration

class MetricsEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Multi-threaded global pool even on single-core CI (must precede the
    // first lazy ThreadPool::Global() construction).
    setenv("AGORA_THREADS", "8", 0);
    db_ = new Database();
    TpchOptions options;
    options.scale_factor = 0.002;  // ~12k lineitems: above the morsel floor
    Status s = GenerateTpch(options, &db_->catalog());
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static QueryResult RunAt(int threads, const std::string& sql) {
    db_->set_execution_threads(threads);
    auto result = db_->Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    db_->set_execution_threads(0);
    return result.ok() ? std::move(*result) : QueryResult();
  }

  static Database* db_;
};

Database* MetricsEngineTest::db_ = nullptr;

constexpr const char* kAggSql =
    "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q "
    "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag";

constexpr const char* kJoinSql =
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders, lineitem "
    "WHERE l_orderkey = o_orderkey AND l_quantity < 10 "
    "GROUP BY o_orderpriority ORDER BY o_orderpriority";

TEST_F(MetricsEngineTest, QueryResultCarriesProfile) {
  QueryResult result = RunAt(0, kJoinSql);
  ASSERT_FALSE(result.profile().empty());
  // Pre-order: a root at depth 0, every child deeper than 0.
  EXPECT_EQ(result.profile()[0].depth, 0);
  int64_t total_busy = 0;
  bool saw_scan = false;
  for (const OperatorProfileNode& node : result.profile()) {
    EXPECT_GE(node.busy_ns, 0);
    EXPECT_GE(node.invocations, 0);
    total_busy += node.busy_ns;
    saw_scan = saw_scan || node.name == "Scan";
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_GT(total_busy, 0);
}

/// The counters and the per-operator rows/invocations are part of the
/// deterministic execution contract: identical at every thread count
/// (only busy_ns, which is wall time, may move).
TEST_F(MetricsEngineTest, ProfileCountersThreadInvariant) {
  for (const char* sql : {kAggSql, kJoinSql}) {
    QueryResult at1 = RunAt(1, sql);
    QueryResult at8 = RunAt(8, sql);
    const ExecStats& a = at1.stats();
    const ExecStats& b = at8.stats();
    EXPECT_EQ(a.rows_scanned, b.rows_scanned) << sql;
    EXPECT_EQ(a.rows_joined, b.rows_joined) << sql;
    EXPECT_EQ(a.probe_calls, b.probe_calls) << sql;
    EXPECT_EQ(a.rows_aggregated, b.rows_aggregated) << sql;
    EXPECT_EQ(a.bytes_materialized, b.bytes_materialized) << sql;
    ASSERT_EQ(at1.profile().size(), at8.profile().size()) << sql;
    for (size_t i = 0; i < at1.profile().size(); ++i) {
      const OperatorProfileNode& n1 = at1.profile()[i];
      const OperatorProfileNode& n8 = at8.profile()[i];
      EXPECT_EQ(n1.name, n8.name) << sql;
      EXPECT_EQ(n1.depth, n8.depth) << sql;
      EXPECT_EQ(n1.rows_out, n8.rows_out) << sql << " op " << n1.name;
      EXPECT_EQ(n1.invocations, n8.invocations) << sql << " op " << n1.name;
    }
  }
}

TEST_F(MetricsEngineTest, ExplainAnalyzePrintsProfileTree) {
  QueryResult result = RunAt(0, std::string("EXPLAIN ANALYZE ") + kJoinSql);
  ASSERT_EQ(result.num_rows(), size_t{1});
  std::string text = result.Get(0, 0).ToString();
  EXPECT_NE(text.find("[analyze] rows="), std::string::npos) << text;
  EXPECT_NE(text.find("per-operator profile"), std::string::npos) << text;
  EXPECT_NE(text.find("%"), std::string::npos) << text;
  EXPECT_NE(text.find("HashJoin"), std::string::npos) << text;
  EXPECT_NE(text.find("calls="), std::string::npos) << text;
  EXPECT_NE(text.find("[analyze] totals: rows_scanned="), std::string::npos)
      << text;
}

/// Strips the timing columns ("  12.345 ms   67.8%") from an EXPLAIN
/// ANALYZE output, leaving only the deterministic parts.
std::string StripTimings(const std::string& text) {
  std::istringstream lines(text);
  std::string line, out;
  while (std::getline(lines, line)) {
    size_t ms = line.find(" ms ");
    size_t pct = line.find("%");
    if (ms != std::string::npos && pct != std::string::npos && ms < pct) {
      // "[analyze]   Name   0.123 ms   45.6%  rows=..." — cut the middle.
      size_t num_start = line.find_last_not_of("0123456789. ", ms);
      out += line.substr(0, num_start + 1) + line.substr(pct + 1);
    } else {
      out += line;
    }
    out += '\n';
  }
  return out;
}

/// Regression: every EXPLAIN ANALYZE executes in a fresh per-query
/// context, so running the same analysis back to back must report
/// identical counters (no accumulation), while the database-wide
/// cumulative counters grow exactly linearly (merged exactly once).
TEST_F(MetricsEngineTest, BackToBackExplainAnalyzeDoesNotDoubleCount) {
  const std::string sql = std::string("EXPLAIN ANALYZE ") + kAggSql;
  const int64_t scanned0 = db_->cumulative_stats().rows_scanned;
  QueryResult first = RunAt(0, sql);
  const int64_t scanned1 = db_->cumulative_stats().rows_scanned;
  QueryResult second = RunAt(0, sql);
  const int64_t scanned2 = db_->cumulative_stats().rows_scanned;

  const int64_t delta1 = scanned1 - scanned0;
  const int64_t delta2 = scanned2 - scanned1;
  EXPECT_GT(delta1, 0);
  EXPECT_EQ(delta1, delta2);  // merged exactly once per run

  std::string text1 = StripTimings(first.Get(0, 0).ToString());
  std::string text2 = StripTimings(second.Get(0, 0).ToString());
  EXPECT_EQ(text1, text2);
}

TEST_F(MetricsEngineTest, SnapshotCoversAllCountersAndIsResettable) {
  RunAt(0, kJoinSql);
  std::string json = db_->MetricsSnapshot(MetricsFormat::kJson);
  std::string prom = db_->MetricsSnapshot(MetricsFormat::kPrometheus);
  // Every relational + hybrid ExecStats counter is registered after any
  // query (zero-valued series still appear in the snapshot).
  for (const char* name :
       {"rows_scanned_total", "blocks_read_total", "blocks_skipped_total",
        "rows_joined_total", "probe_calls_total", "rows_aggregated_total",
        "rows_sorted_total", "bytes_materialized_total",
        "chunks_emitted_total", "hybrid_filter_rows_total",
        "vector_distances_total", "overfetch_retries_total",
        "fusion_candidates_total", "queries_total", "statements_total",
        "query_seconds_total", "joules_proxy_total",
        "operator_busy_seconds_total", "operator_rows_total",
        "operator_invocations_total"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << "JSON missing " << name;
    EXPECT_NE(prom.find(std::string("agora_") + name), std::string::npos)
        << "Prometheus missing " << name;
  }
  EXPECT_GT(db_->metrics().CounterValue("rows_scanned_total"), 0.0);
  EXPECT_GT(db_->metrics().CounterValue("operator_rows_total", "Scan"), 0.0);

  db_->ResetCumulativeStats();
  EXPECT_EQ(db_->cumulative_stats().rows_scanned, 0);
  EXPECT_TRUE(db_->metrics().Names().empty());
}

// ---------------------------------------------------------------------------
// Docs drift

/// Every metric name the engine registers must appear in docs/METRICS.md
/// (the CI grep step enforces the same from the shell).
TEST_F(MetricsEngineTest, DocsListEveryRegisteredMetricName) {
  RunAt(0, kJoinSql);
  std::ifstream docs(std::string(AGORA_SOURCE_DIR) + "/docs/METRICS.md");
  ASSERT_TRUE(docs.is_open()) << "docs/METRICS.md not found";
  std::stringstream buffer;
  buffer << docs.rdbuf();
  const std::string text = buffer.str();
  for (const std::string& name : db_->metrics().Names()) {
    EXPECT_NE(text.find(name), std::string::npos)
        << "metric '" << name << "' is not documented in docs/METRICS.md";
  }
}

}  // namespace
}  // namespace agora
