#ifndef AGORA_EXEC_PHYSICAL_PLANNER_H_
#define AGORA_EXEC_PHYSICAL_PLANNER_H_

#include "common/result.h"
#include "exec/physical_op.h"
#include "plan/logical_plan.h"

namespace agora {

/// Knobs controlling physical plan choice. Exposed so the benchmarks can
/// disable individual decisions (E4 ablations).
struct PhysicalPlannerOptions {
  /// Use hash joins for equi-conditions (otherwise nested loops).
  bool enable_hash_join = true;
  /// Use zone maps for block skipping when the scan has a pushed range
  /// predicate.
  bool enable_zone_maps = true;
  /// Use hash indexes for `col = constant` scans when one exists.
  bool enable_index_scan = true;
  /// Fuse ORDER BY + LIMIT into a bounded-memory TopK.
  bool enable_topk = true;
  /// Morsel-driven parallel execution (see exec/parallel.h). Whether a
  /// plan takes the parallel path depends on this switch and the plan —
  /// never on `num_threads` — so results match at every thread count.
  bool enable_parallel = true;
  /// Worker tasks per parallel pipeline. 0 = auto: the AGORA_THREADS
  /// environment variable if set, else hardware concurrency.
  int num_threads = 0;
  /// Source tables smaller than this stay on the serial path.
  size_t parallel_min_rows = 8192;
};

/// Lowers an (optionally optimized) logical plan into an executable
/// physical operator tree bound to `context`.
Result<PhysicalOpPtr> CreatePhysicalPlan(
    const LogicalOpPtr& plan, ExecContext* context,
    const PhysicalPlannerOptions& options = {});

}  // namespace agora

#endif  // AGORA_EXEC_PHYSICAL_PLANNER_H_
