#include "common/memory_tracker.h"

namespace agora {
namespace {

std::shared_ptr<MemoryTracker>& ThreadTracker() {
  thread_local std::shared_ptr<MemoryTracker> tracker;
  return tracker;
}

}  // namespace

const std::shared_ptr<MemoryTracker>& CurrentMemoryTracker() {
  return ThreadTracker();
}

ScopedMemoryTracker::ScopedMemoryTracker(
    std::shared_ptr<MemoryTracker> tracker)
    : previous_(std::move(ThreadTracker())) {
  ThreadTracker() = std::move(tracker);
}

ScopedMemoryTracker::~ScopedMemoryTracker() {
  ThreadTracker() = std::move(previous_);
}

}  // namespace agora
