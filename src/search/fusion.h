#ifndef AGORA_SEARCH_FUSION_H_
#define AGORA_SEARCH_FUSION_H_

#include <vector>

#include "search/search_types.h"
#include "vec/distance.h"

namespace agora {

/// Inverts the index layer's "smaller is closer" distances back to a
/// similarity in a stable range (L2: 1/(1+d); IP/cosine: the negated
/// distance, i.e. the raw similarity).
double DistanceToSimilarity(Metric metric, float distance);

/// Combines a BM25 ranked list and a vector ranked list into fused top-k.
/// Weighted-sum mode min-max-normalizes each modality over its hit list (a
/// single-element list normalizes to 1.0); RRF scores are
/// weight/(rrf_k + rank). Ties break by (score desc, id asc); the result
/// is truncated to k. Deterministic for fixed inputs.
std::vector<ScoredDoc> FuseScores(const FusionParams& params, Metric metric,
                                  const std::vector<SearchHit>& keyword_hits,
                                  const std::vector<Neighbor>& vector_hits,
                                  size_t k);

}  // namespace agora

#endif  // AGORA_SEARCH_FUSION_H_
