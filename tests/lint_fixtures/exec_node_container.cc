// Golden violation fixture for scripts/agora_lint.py (never compiled):
// node-based std containers in src/exec regress the flat-hash kernel
// work; operators must use JoinHashTable/GroupKeyTable or sorted
// vectors.
// lint-as: src/exec/bad_container.cc
// expect-violation: exec-node-container

#include <cstdint>
#include <unordered_map>

namespace agora {

struct BadOperatorState {
  std::unordered_map<int64_t, double> per_group_sums;
};

}  // namespace agora
