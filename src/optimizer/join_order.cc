#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/verify.h"
#include "expr/expr_rewrite.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_verify.h"

namespace agora {
namespace optimizer_internal {

namespace {

/// A maximal region of inner/cross joins. Leaves keep their original
/// left-to-right order; `offsets[i]` is leaf i's first column in the
/// region's (original) output schema. Conjuncts are bound against that
/// global schema.
struct JoinRegion {
  std::vector<LogicalOpPtr> leaves;
  std::vector<size_t> offsets;
  std::vector<ExprPtr> conjuncts;
  size_t total_arity = 0;
};

/// DP table entry for a leaf subset.
struct DpEntry {
  double cost = 0;
  double rows = 0;
  uint32_t left_mask = 0;   // 0 => leaf
  uint32_t right_mask = 0;
  int leaf = -1;
};

class JoinOrderer {
 public:
  JoinOrderer(CardinalityEstimator* estimator) : estimator_(estimator) {}

  LogicalOpPtr Run(const LogicalOpPtr& node) {
    if (node->kind() != LogicalOpKind::kJoin) {
      return RecurseChildren(node);
    }
    const auto& join = static_cast<const LogicalJoin&>(*node);
    if (join.join_kind() == LogicalJoin::Kind::kLeft) {
      return RecurseChildren(node);
    }

    JoinRegion region;
    CollectRegion(node, &region);
    if (region.leaves.size() > 20) {
      return RecurseChildren(node);  // out of DP range; leave as-is
    }
    if (region.leaves.size() < 3) {
      // Nothing to reorder; still rebuild (children were recursed).
      return RebuildOriginal(region);
    }
    return Order(region, node->schema());
  }

 private:
  LogicalOpPtr RecurseChildren(const LogicalOpPtr& node) {
    if (node->children().empty()) return node;
    // Rebuild via the generic child-replacement used by the other passes:
    // recreate the node with recursed children.
    std::vector<LogicalOpPtr> children;
    for (const auto& child : node->children()) children.push_back(Run(child));
    switch (node->kind()) {
      case LogicalOpKind::kFilter: {
        const auto& f = static_cast<const LogicalFilter&>(*node);
        return std::make_shared<LogicalFilter>(children[0], f.predicate());
      }
      case LogicalOpKind::kProject: {
        const auto& p = static_cast<const LogicalProject&>(*node);
        std::vector<std::string> names;
        for (const Field& field : p.schema().fields()) {
          names.push_back(field.name);
        }
        return std::make_shared<LogicalProject>(children[0], p.exprs(),
                                                std::move(names));
      }
      case LogicalOpKind::kJoin: {
        const auto& j = static_cast<const LogicalJoin&>(*node);
        return std::make_shared<LogicalJoin>(j.join_kind(), children[0],
                                             children[1], j.condition());
      }
      case LogicalOpKind::kAggregate: {
        const auto& a = static_cast<const LogicalAggregate&>(*node);
        std::vector<std::string> group_names;
        for (size_t i = 0; i < a.group_by().size(); ++i) {
          group_names.push_back(a.schema().field(i).name);
        }
        return std::make_shared<LogicalAggregate>(children[0], a.group_by(),
                                                  a.aggregates(),
                                                  std::move(group_names));
      }
      case LogicalOpKind::kSort: {
        const auto& s = static_cast<const LogicalSort&>(*node);
        return std::make_shared<LogicalSort>(children[0], s.keys());
      }
      case LogicalOpKind::kLimit: {
        const auto& l = static_cast<const LogicalLimit&>(*node);
        return std::make_shared<LogicalLimit>(children[0], l.limit(),
                                              l.offset());
      }
      case LogicalOpKind::kDistinct:
        return std::make_shared<LogicalDistinct>(children[0]);
      case LogicalOpKind::kUnion:
        return std::make_shared<LogicalUnion>(std::move(children));
      case LogicalOpKind::kScan:
        return node;
      case LogicalOpKind::kTextMatch:
      case LogicalOpKind::kVectorTopK:
      case LogicalOpKind::kScoreFusion:
        // Hybrid subtrees contain no joins; keep them intact.
        return node;
    }
    return node;
  }

  /// DFS that flattens inner/cross joins; other nodes become leaves
  /// (recursively optimized). Join conditions are rebased onto the global
  /// region schema by adding the subtree's start offset.
  size_t CollectRegion(const LogicalOpPtr& node, JoinRegion* region) {
    if (node->kind() == LogicalOpKind::kJoin) {
      const auto& j = static_cast<const LogicalJoin&>(*node);
      if (j.join_kind() != LogicalJoin::Kind::kLeft) {
        size_t start = region->total_arity;
        CollectRegion(j.children()[0], region);
        CollectRegion(j.children()[1], region);
        if (j.condition() != nullptr) {
          for (ExprPtr& conjunct : SplitConjuncts(j.condition())) {
            region->conjuncts.push_back(RemapColumns(
                conjunct, [start](size_t i) { return i + start; }));
          }
        }
        return region->total_arity - start;
      }
    }
    LogicalOpPtr leaf = Run(node);  // optimize nested regions
    size_t arity = leaf->schema().num_fields();
    region->offsets.push_back(region->total_arity);
    region->leaves.push_back(std::move(leaf));
    region->total_arity += arity;
    return arity;
  }

  /// Rebuilds the original shape (used when < 3 leaves): left-deep over
  /// leaves in order with all conjuncts at the top join.
  LogicalOpPtr RebuildOriginal(const JoinRegion& region) {
    if (region.leaves.size() == 1) {
      ExprPtr cond = CombineConjuncts(region.conjuncts);
      LogicalOpPtr out = region.leaves[0];
      if (cond != nullptr) {
        out = std::make_shared<LogicalFilter>(std::move(out), cond);
      }
      return out;
    }
    ExprPtr cond = CombineConjuncts(region.conjuncts);
    LogicalJoin::Kind kind = cond == nullptr ? LogicalJoin::Kind::kCross
                                             : LogicalJoin::Kind::kInner;
    return std::make_shared<LogicalJoin>(kind, region.leaves[0],
                                         region.leaves[1], std::move(cond));
  }

  /// Which leaves a global column belongs to.
  int LeafOfColumn(const JoinRegion& region, size_t column) const {
    for (size_t i = region.leaves.size(); i-- > 0;) {
      if (column >= region.offsets[i]) return static_cast<int>(i);
    }
    return 0;
  }

  uint32_t ConjunctLeafMask(const JoinRegion& region,
                            const ExprPtr& conjunct) const {
    std::vector<size_t> refs;
    conjunct->CollectColumnRefs(&refs);
    uint32_t mask = 0;
    for (size_t r : refs) {
      mask |= 1u << LeafOfColumn(region, r);
    }
    return mask;
  }

  /// NDV of a global column, using base-table stats for scan leaves and
  /// the leaf cardinality otherwise.
  double ColumnNdv(const JoinRegion& region, size_t column,
                   const std::vector<double>& leaf_rows) const {
    int leaf_idx = LeafOfColumn(region, column);
    const LogicalOpPtr& leaf = region.leaves[static_cast<size_t>(leaf_idx)];
    double fallback = leaf_rows[static_cast<size_t>(leaf_idx)];
    if (leaf->kind() != LogicalOpKind::kScan) return fallback;
    const auto& scan = static_cast<const LogicalScan&>(*leaf);
    size_t local = column - region.offsets[static_cast<size_t>(leaf_idx)];
    size_t base = scan.projection().empty() ? local
                                            : scan.projection()[local];
    std::shared_ptr<const TableStats> stats =
        estimator_->stats_cache()->Get(*scan.table());
    if (base >= stats->columns.size()) return fallback;
    double ndv = static_cast<double>(stats->columns[base].ndv);
    return std::max(1.0, std::min(ndv, fallback));
  }

  /// Selectivity of one join conjunct: 1/max(ndv) for equi predicates over
  /// column pairs, coarse defaults otherwise.
  double ConjunctSelectivity(const JoinRegion& region, const ExprPtr& c,
                             const std::vector<double>& leaf_rows) const {
    if (c->kind() == ExprKind::kComparison) {
      const auto* cmp = static_cast<const ComparisonExpr*>(c.get());
      if (cmp->op() == CompareOp::kEq &&
          cmp->left()->kind() == ExprKind::kColumnRef &&
          cmp->right()->kind() == ExprKind::kColumnRef) {
        size_t lc = static_cast<const ColumnRefExpr*>(cmp->left().get())
                        ->index();
        size_t rc = static_cast<const ColumnRefExpr*>(cmp->right().get())
                        ->index();
        double ndv = std::max(ColumnNdv(region, lc, leaf_rows),
                              ColumnNdv(region, rc, leaf_rows));
        return 1.0 / std::max(ndv, 1.0);
      }
      return 1.0 / 3.0;
    }
    return 0.25;
  }

  LogicalOpPtr Order(const JoinRegion& region, const Schema& original_schema) {
    size_t n = region.leaves.size();
    std::vector<double> leaf_rows(n);
    for (size_t i = 0; i < n; ++i) {
      leaf_rows[i] = estimator_->EstimateRows(*region.leaves[i]);
    }
    std::vector<uint32_t> conj_masks;
    std::vector<double> conj_sel;
    for (const ExprPtr& c : region.conjuncts) {
      conj_masks.push_back(ConjunctLeafMask(region, c));
      conj_sel.push_back(ConjunctSelectivity(region, c, leaf_rows));
    }

    if (n <= 12) {
      return DpOrder(region, leaf_rows, conj_masks, conj_sel,
                     original_schema);
    }
    return GreedyOrder(region, leaf_rows, conj_masks, conj_sel,
                       original_schema);
  }

  double JoinSelectivity(uint32_t left, uint32_t right,
                         const std::vector<uint32_t>& conj_masks,
                         const std::vector<double>& conj_sel) const {
    uint32_t mask = left | right;
    double sel = 1.0;
    for (size_t c = 0; c < conj_masks.size(); ++c) {
      uint32_t m = conj_masks[c];
      // Applied at this join: covered now, not by either side alone.
      if ((m & ~mask) == 0 && (m & ~left) != 0 && (m & ~right) != 0) {
        sel *= conj_sel[c];
      }
    }
    return sel;
  }

  LogicalOpPtr DpOrder(const JoinRegion& region,
                       const std::vector<double>& leaf_rows,
                       const std::vector<uint32_t>& conj_masks,
                       const std::vector<double>& conj_sel,
                       const Schema& original_schema) {
    size_t n = region.leaves.size();
    uint32_t full = (1u << n) - 1;
    std::vector<DpEntry> dp(full + 1);
    std::vector<bool> present(full + 1, false);
    for (size_t i = 0; i < n; ++i) {
      uint32_t m = 1u << i;
      dp[m] = DpEntry{0.0, leaf_rows[i], 0, 0, static_cast<int>(i)};
      present[m] = true;
    }

    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (__builtin_popcount(mask) < 2) continue;
      bool found_connected = false;
      DpEntry best;
      best.cost = std::numeric_limits<double>::infinity();
      // Two passes: connected splits first; cross products only if no
      // connected split exists.
      for (int pass = 0; pass < 2 && !found_connected; ++pass) {
        for (uint32_t sub = (mask - 1) & mask; sub != 0;
             sub = (sub - 1) & mask) {
          uint32_t other = mask ^ sub;
          if (sub > other) continue;  // symmetric halves
          if (!present[sub] || !present[other]) continue;
          double sel = JoinSelectivity(sub, other, conj_masks, conj_sel);
          bool connected = sel < 1.0;
          if (pass == 0 && !connected) continue;
          double rows = dp[sub].rows * dp[other].rows * sel;
          double cost = dp[sub].cost + dp[other].cost + rows +
                        dp[sub].rows + dp[other].rows;
          if (cost < best.cost) {
            best = DpEntry{cost, rows, sub, other, -1};
          }
          if (pass == 0) found_connected = connected || found_connected;
        }
        if (pass == 0 && best.cost <
                             std::numeric_limits<double>::infinity()) {
          break;  // found at least one connected split
        }
      }
      if (best.cost < std::numeric_limits<double>::infinity()) {
        dp[mask] = best;
        present[mask] = true;
      }
    }
    AGORA_CHECK(present[full]) << "join DP failed to cover all relations";
    std::vector<size_t> mapping;
    LogicalOpPtr plan =
        BuildFromDp(region, dp, full, conj_masks, &mapping);
    return RestoreOrder(std::move(plan), mapping, original_schema);
  }

  /// Rebuilds the plan for `mask` and appends the global column ids of its
  /// output to `mapping`.
  LogicalOpPtr BuildFromDp(const JoinRegion& region,
                           const std::vector<DpEntry>& dp, uint32_t mask,
                           const std::vector<uint32_t>& conj_masks,
                           std::vector<size_t>* mapping) {
    const DpEntry& e = dp[mask];
    if (e.leaf >= 0) {
      size_t i = static_cast<size_t>(e.leaf);
      size_t arity = region.leaves[i]->schema().num_fields();
      for (size_t c = 0; c < arity; ++c) {
        mapping->push_back(region.offsets[i] + c);
      }
      return region.leaves[i];
    }
    // Put the smaller side on the right: the hash join builds on the
    // right child.
    uint32_t lm = e.left_mask, rm = e.right_mask;
    if (dp[lm].rows < dp[rm].rows) std::swap(lm, rm);

    std::vector<size_t> left_map, right_map;
    LogicalOpPtr left = BuildFromDp(region, dp, lm, conj_masks, &left_map);
    LogicalOpPtr right = BuildFromDp(region, dp, rm, conj_masks, &right_map);

    std::vector<size_t> combined = left_map;
    combined.insert(combined.end(), right_map.begin(), right_map.end());
    std::unordered_map<size_t, size_t> global_to_local;
    for (size_t i = 0; i < combined.size(); ++i) {
      global_to_local[combined[i]] = i;
    }

    std::vector<ExprPtr> conds;
    for (size_t c = 0; c < region.conjuncts.size(); ++c) {
      uint32_t m = conj_masks[c];
      if ((m & ~mask) == 0 && (m & ~lm) != 0 && (m & ~rm) != 0) {
        conds.push_back(RemapColumns(
            region.conjuncts[c], [&global_to_local](size_t g) {
              auto it = global_to_local.find(g);
              AGORA_CHECK(it != global_to_local.end());
              return it->second;
            }));
      }
    }
    ExprPtr cond = CombineConjuncts(std::move(conds));
    LogicalJoin::Kind kind = cond == nullptr ? LogicalJoin::Kind::kCross
                                             : LogicalJoin::Kind::kInner;
    mapping->insert(mapping->end(), combined.begin(), combined.end());
    return std::make_shared<LogicalJoin>(kind, std::move(left),
                                         std::move(right), std::move(cond));
  }

  /// Greedy fallback for very wide regions: repeatedly joins the pair with
  /// the smallest estimated output.
  LogicalOpPtr GreedyOrder(const JoinRegion& region,
                           const std::vector<double>& leaf_rows,
                           const std::vector<uint32_t>& conj_masks,
                           const std::vector<double>& conj_sel,
                           const Schema& original_schema) {
    struct Part {
      LogicalOpPtr node;
      uint32_t mask;
      double rows;
      std::vector<size_t> mapping;
    };
    std::vector<Part> parts;
    for (size_t i = 0; i < region.leaves.size(); ++i) {
      std::vector<size_t> map;
      size_t arity = region.leaves[i]->schema().num_fields();
      for (size_t c = 0; c < arity; ++c) map.push_back(region.offsets[i] + c);
      parts.push_back(
          Part{region.leaves[i], 1u << i, leaf_rows[i], std::move(map)});
    }
    std::vector<bool> applied(region.conjuncts.size(), false);
    while (parts.size() > 1) {
      double best_rows = std::numeric_limits<double>::infinity();
      size_t bi = 0, bj = 1;
      for (size_t i = 0; i < parts.size(); ++i) {
        for (size_t j = i + 1; j < parts.size(); ++j) {
          double sel = JoinSelectivity(parts[i].mask, parts[j].mask,
                                       conj_masks, conj_sel);
          double rows = parts[i].rows * parts[j].rows * sel;
          // Prefer connected pairs strongly.
          if (sel >= 1.0) rows *= 1e6;
          if (rows < best_rows) {
            best_rows = rows;
            bi = i;
            bj = j;
          }
        }
      }
      Part left = std::move(parts[bi]);
      Part right = std::move(parts[bj]);
      parts.erase(parts.begin() + static_cast<long>(bj));
      parts.erase(parts.begin() + static_cast<long>(bi));
      if (left.rows < right.rows) std::swap(left, right);

      uint32_t mask = left.mask | right.mask;
      std::vector<size_t> combined = left.mapping;
      combined.insert(combined.end(), right.mapping.begin(),
                      right.mapping.end());
      std::unordered_map<size_t, size_t> global_to_local;
      for (size_t i = 0; i < combined.size(); ++i) {
        global_to_local[combined[i]] = i;
      }
      std::vector<ExprPtr> conds;
      for (size_t c = 0; c < region.conjuncts.size(); ++c) {
        if (applied[c]) continue;
        if ((conj_masks[c] & ~mask) == 0) {
          applied[c] = true;
          conds.push_back(RemapColumns(
              region.conjuncts[c], [&global_to_local](size_t g) {
                auto it = global_to_local.find(g);
                AGORA_CHECK(it != global_to_local.end());
                return it->second;
              }));
        }
      }
      ExprPtr cond = CombineConjuncts(std::move(conds));
      LogicalJoin::Kind kind = cond == nullptr ? LogicalJoin::Kind::kCross
                                               : LogicalJoin::Kind::kInner;
      double sel = JoinSelectivity(left.mask, right.mask, conj_masks,
                                   conj_sel);
      auto joined = std::make_shared<LogicalJoin>(kind, left.node, right.node,
                                                  std::move(cond));
      parts.push_back(Part{std::move(joined), mask,
                           left.rows * right.rows * sel,
                           std::move(combined)});
    }
    return RestoreOrder(std::move(parts[0].node), parts[0].mapping,
                        original_schema);
  }

  /// Wraps `plan` in a Project restoring the region's original column
  /// order (no-op when already in order).
  LogicalOpPtr RestoreOrder(LogicalOpPtr plan,
                            const std::vector<size_t>& mapping,
                            const Schema& original_schema) {
    bool identity = true;
    for (size_t i = 0; i < mapping.size(); ++i) {
      if (mapping[i] != i) {
        identity = false;
        break;
      }
    }
    if (identity) return plan;
    std::vector<size_t> global_to_local(mapping.size());
    for (size_t local = 0; local < mapping.size(); ++local) {
      global_to_local[mapping[local]] = local;
    }
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (size_t g = 0; g < mapping.size(); ++g) {
      const Field& f = original_schema.field(g);
      exprs.push_back(MakeColumnRef(global_to_local[g], f.type, f.name));
      names.push_back(f.name);
    }
    return std::make_shared<LogicalProject>(std::move(plan),
                                            std::move(exprs),
                                            std::move(names));
  }

  CardinalityEstimator* estimator_;
};

}  // namespace

LogicalOpPtr ReorderJoins(const LogicalOpPtr& node,
                          CardinalityEstimator* estimator) {
  JoinOrderer orderer(estimator);
  return orderer.Run(node);
}

}  // namespace optimizer_internal

Result<LogicalOpPtr> Optimizer::Optimize(LogicalOpPtr plan) {
  using namespace optimizer_internal;
  // AGORA_VERIFY: check plan invariants before the pipeline and after
  // every pass, so a pass that breaks the plan is named in the error
  // instead of surfacing as a downstream crash.
  const bool verify = VerificationEnabled();
  if (verify) {
    AGORA_RETURN_IF_ERROR(VerifyPlan(plan.get(), "before optimization"));
  }
  // Not optional: the executor requires every fusion node to carry a
  // concrete strategy. Only the *rule* (cost vs threshold) is switchable.
  ResolveHybridStrategies(plan, options_, &estimator_);
  if (verify) {
    AGORA_RETURN_IF_ERROR(
        VerifyPlan(plan.get(), "after ResolveHybridStrategies"));
  }
  if (options_.enable_constant_folding) {
    plan = FoldPlanConstants(plan);
    if (verify) {
      AGORA_RETURN_IF_ERROR(VerifyPlan(plan.get(), "after FoldPlanConstants"));
    }
  }
  if (options_.enable_predicate_pushdown) {
    plan = PushDownPredicates(plan, {});
    if (verify) {
      AGORA_RETURN_IF_ERROR(VerifyPlan(plan.get(), "after PushDownPredicates"));
    }
  }
  if (options_.enable_join_reorder) {
    plan = ReorderJoins(plan, &estimator_);
    if (verify) {
      AGORA_RETURN_IF_ERROR(VerifyPlan(plan.get(), "after ReorderJoins"));
    }
  }
  if (options_.enable_projection_pruning) {
    plan = PruneColumns(plan);
    if (verify) {
      AGORA_RETURN_IF_ERROR(VerifyPlan(plan.get(), "after PruneColumns"));
    }
  }
  if (options_.enable_zone_maps) {
    FlagZoneMaps(plan);
    if (verify) {
      AGORA_RETURN_IF_ERROR(VerifyPlan(plan.get(), "after FlagZoneMaps"));
    }
  }
  return plan;
}

}  // namespace agora
