#include "server/admission.h"

namespace agora {

AdmissionController::Outcome AdmissionController::Admit(
    std::chrono::steady_clock::time_point deadline, bool has_deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) return Outcome::kDraining;
  if (active_ < max_concurrent_) {
    ++active_;
    return Outcome::kAdmitted;
  }
  if (queued_ >= max_queued_) return Outcome::kQueueFull;
  ++queued_;
  Outcome outcome = Outcome::kAdmitted;
  auto ready = [this] { return draining_ || active_ < max_concurrent_; };
  while (true) {
    if (has_deadline) {
      if (!cv_.wait_until(lock, deadline, ready)) {
        outcome = Outcome::kTimedOut;
        break;
      }
    } else {
      cv_.wait(lock, ready);
    }
    if (draining_) {
      outcome = Outcome::kDraining;
      break;
    }
    if (active_ < max_concurrent_) {
      ++active_;
      break;
    }
    // Lost the race to another waiter; go back to waiting.
  }
  --queued_;
  return outcome;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  cv_.notify_all();
}

void AdmissionController::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

int AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

bool AdmissionController::WaitIdle(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] { return active_ == 0; });
}

}  // namespace agora
