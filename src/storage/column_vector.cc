#include "storage/column_vector.h"

#include "common/hash.h"

namespace agora {

void ColumnVector::Reserve(size_t n) {
  validity_.reserve(n);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      ints_.reserve(n);
      break;
    case TypeId::kDouble:
      doubles_.reserve(n);
      break;
    case TypeId::kString:
      strings_.reserve(n);
      break;
    case TypeId::kInvalid:
      break;
  }
}

void ColumnVector::Clear() {
  validity_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
}

void ColumnVector::AppendNull() {
  validity_.push_back(0);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      ints_.push_back(0);
      break;
    case TypeId::kDouble:
      doubles_.push_back(0.0);
      break;
    case TypeId::kString:
      strings_.emplace_back();
      break;
    case TypeId::kInvalid:
      break;
  }
}

void ColumnVector::AppendInt64(int64_t v) {
  AGORA_DCHECK(type_ == TypeId::kInt64 || type_ == TypeId::kDate ||
               type_ == TypeId::kBool);
  validity_.push_back(1);
  ints_.push_back(v);
}

void ColumnVector::AppendDouble(double v) {
  AGORA_DCHECK(type_ == TypeId::kDouble);
  validity_.push_back(1);
  doubles_.push_back(v);
}

void ColumnVector::AppendString(std::string v) {
  AGORA_DCHECK(type_ == TypeId::kString);
  validity_.push_back(1);
  strings_.push_back(std::move(v));
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      AppendBool(v.bool_value());
      break;
    case TypeId::kInt64:
    case TypeId::kDate:
      AppendInt64(v.int64_value());
      break;
    case TypeId::kDouble:
      AppendDouble(v.type() == TypeId::kDouble ? v.double_value()
                                               : v.AsDouble());
      break;
    case TypeId::kString:
      AppendString(v.string_value());
      break;
    case TypeId::kInvalid:
      AGORA_CHECK(false) << "append to invalid-typed column";
  }
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t row) {
  AGORA_DCHECK(type_ == other.type_);
  if (other.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      AppendInt64(other.ints_[row]);
      break;
    case TypeId::kDouble:
      AppendDouble(other.doubles_[row]);
      break;
    case TypeId::kString:
      AppendString(other.strings_[row]);
      break;
    case TypeId::kInvalid:
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(ints_[i] != 0);
    case TypeId::kInt64:
      return Value::Int64(ints_[i]);
    case TypeId::kDate:
      return Value::Date(ints_[i]);
    case TypeId::kDouble:
      return Value::Double(doubles_[i]);
    case TypeId::kString:
      return Value::String(strings_[i]);
    case TypeId::kInvalid:
      return Value::Null();
  }
  return Value::Null();
}

void ColumnVector::SetValue(size_t i, const Value& v) {
  AGORA_DCHECK(i < size());
  if (v.is_null()) {
    validity_[i] = 0;
    return;
  }
  validity_[i] = 1;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      ints_[i] = v.int64_value();
      break;
    case TypeId::kDouble:
      doubles_[i] = v.type() == TypeId::kDouble ? v.double_value()
                                                : v.AsDouble();
      break;
    case TypeId::kString:
      strings_[i] = v.string_value();
      break;
    case TypeId::kInvalid:
      break;
  }
}

bool ColumnVector::AllValid() const {
  for (uint8_t v : validity_) {
    if (v == 0) return false;
  }
  return true;
}

uint64_t ColumnVector::HashRow(size_t i) const {
  if (IsNull(i)) return 0x6e756c6cULL;
  switch (type_) {
    case TypeId::kString:
      return HashString(strings_[i]);
    case TypeId::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &doubles_[i], sizeof(bits));
      return HashMix64(bits);
    }
    default:
      return HashMix64(static_cast<uint64_t>(ints_[i]));
  }
}

void ColumnVector::HashBatch(uint64_t* hashes, size_t n, bool combine,
                             bool normalize_zero) const {
  AGORA_DCHECK(n <= size());
  auto emit = [&](size_t i, uint64_t h) {
    hashes[i] = combine ? HashCombine(hashes[i], h) : h;
  };
  switch (type_) {
    case TypeId::kString:
      for (size_t i = 0; i < n; ++i) {
        emit(i, validity_[i] != 0 ? HashString(strings_[i]) : kNullHash);
      }
      break;
    case TypeId::kDouble:
      for (size_t i = 0; i < n; ++i) {
        if (validity_[i] == 0) {
          emit(i, kNullHash);
          continue;
        }
        double d = doubles_[i];
        if (normalize_zero && d == 0.0) d = 0.0;
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        emit(i, HashMix64(bits));
      }
      break;
    default:
      for (size_t i = 0; i < n; ++i) {
        emit(i, validity_[i] != 0
                    ? HashMix64(static_cast<uint64_t>(ints_[i]))
                    : kNullHash);
      }
      break;
  }
}

void ColumnVector::BatchEqualRows(const uint32_t* rows,
                                  const ColumnVector& other,
                                  const uint32_t* other_rows, size_t n,
                                  bool bitwise_doubles,
                                  uint8_t* equal) const {
  AGORA_DCHECK(type_ == other.type_);
  switch (type_) {
    case TypeId::kString:
      for (size_t i = 0; i < n; ++i) {
        if (equal[i] == 0) continue;
        size_t a = rows[i], b = other_rows[i];
        bool an = validity_[a] == 0, bn = other.validity_[b] == 0;
        equal[i] = (an || bn) ? (an && bn)
                              : (strings_[a] == other.strings_[b]);
      }
      break;
    case TypeId::kDouble:
      for (size_t i = 0; i < n; ++i) {
        if (equal[i] == 0) continue;
        size_t a = rows[i], b = other_rows[i];
        bool an = validity_[a] == 0, bn = other.validity_[b] == 0;
        if (an || bn) {
          equal[i] = an && bn;
          continue;
        }
        double x = doubles_[a], y = other.doubles_[b];
        if (bitwise_doubles) {
          if (x == 0.0) x = 0.0;
          if (y == 0.0) y = 0.0;
          uint64_t xb, yb;
          std::memcpy(&xb, &x, sizeof(xb));
          std::memcpy(&yb, &y, sizeof(yb));
          equal[i] = xb == yb;
        } else {
          equal[i] = !(x < y) && !(x > y);
        }
      }
      break;
    default:
      for (size_t i = 0; i < n; ++i) {
        if (equal[i] == 0) continue;
        size_t a = rows[i], b = other_rows[i];
        bool an = validity_[a] == 0, bn = other.validity_[b] == 0;
        equal[i] = (an || bn) ? (an && bn) : (ints_[a] == other.ints_[b]);
      }
      break;
  }
}

void ColumnVector::AppendGatherPadded(const ColumnVector& src,
                                      const uint32_t* sel, size_t n) {
  AGORA_DCHECK(type_ == src.type_);
  constexpr uint32_t kPad = UINT32_MAX;
  validity_.reserve(validity_.size() + n);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      ints_.reserve(ints_.size() + n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t s = sel[i];
        bool valid = s != kPad && src.validity_[s] != 0;
        validity_.push_back(valid ? 1 : 0);
        ints_.push_back(valid ? src.ints_[s] : 0);
      }
      break;
    case TypeId::kDouble:
      doubles_.reserve(doubles_.size() + n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t s = sel[i];
        bool valid = s != kPad && src.validity_[s] != 0;
        validity_.push_back(valid ? 1 : 0);
        doubles_.push_back(valid ? src.doubles_[s] : 0.0);
      }
      break;
    case TypeId::kString:
      strings_.reserve(strings_.size() + n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t s = sel[i];
        bool valid = s != kPad && src.validity_[s] != 0;
        validity_.push_back(valid ? 1 : 0);
        if (valid) {
          strings_.push_back(src.strings_[s]);
        } else {
          strings_.emplace_back();
        }
      }
      break;
    case TypeId::kInvalid:
      break;
  }
}

int ColumnVector::CompareRows(size_t i, const ColumnVector& other,
                              size_t j) const {
  AGORA_DCHECK(type_ == other.type_);
  bool an = IsNull(i), bn = other.IsNull(j);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  switch (type_) {
    case TypeId::kString: {
      int c = strings_[i].compare(other.strings_[j]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = doubles_[i], b = other.doubles_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      int64_t a = ints_[i], b = other.ints_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  ColumnVector out(type_);
  out.Reserve(sel.size());
  for (uint32_t idx : sel) out.AppendFrom(*this, idx);
  return out;
}

ColumnVector ColumnVector::Slice(size_t begin, size_t count) const {
  ColumnVector out(type_);
  out.Reserve(count);
  size_t end = begin + count;
  AGORA_DCHECK(end <= size());
  for (size_t i = begin; i < end; ++i) out.AppendFrom(*this, i);
  return out;
}

size_t ColumnVector::MemoryBytes() const {
  size_t bytes = validity_.capacity() + ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double);
  for (const auto& s : strings_) bytes += sizeof(std::string) + s.capacity();
  return bytes;
}

Status ColumnVector::CheckConsistency() const {
  size_t rows = validity_.size();
  size_t payload = 0;
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      payload = ints_.size();
      break;
    case TypeId::kDouble:
      payload = doubles_.size();
      break;
    case TypeId::kString:
      payload = strings_.size();
      break;
    default:
      if (rows != 0) {
        return Status::Internal(
            "column vector of invalid type declares " + std::to_string(rows) +
            " rows");
      }
      return Status::OK();
  }
  if (payload != rows) {
    return Status::Internal(
        std::string("column vector payload/validity mismatch: type ") +
        std::string(TypeIdToString(type_)) + " has " +
        std::to_string(payload) + " payload rows but validity declares " +
        std::to_string(rows));
  }
  return Status::OK();
}

}  // namespace agora
