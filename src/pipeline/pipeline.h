#ifndef AGORA_PIPELINE_PIPELINE_H_
#define AGORA_PIPELINE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace agora {

/// One document flowing through a data-prep pipeline (the unit of an LLM
/// training-data corpus).
struct PipelineDoc {
  int64_t id = 0;
  std::string text;
};

/// A pipeline stage. Filters decide keep/drop and may be reordered by the
/// optimizer; transforms mutate the text and act as barriers (a filter
/// must not jump across a transform because the transform changes what
/// the filter sees).
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;

  virtual std::string name() const = 0;

  /// True if this stage only drops documents (never mutates them) and can
  /// therefore be reordered relative to other filters.
  virtual bool is_filter() const = 0;

  /// Processes one document. Returns false to drop it. `work` must be
  /// incremented by the number of abstract work units spent (typically
  /// characters touched), the pipeline's cost currency.
  virtual bool Process(PipelineDoc* doc, uint64_t* work) = 0;

  /// Clears any cross-document state (dedup sets). Called at the start of
  /// every Run.
  virtual void Reset() {}
};

using StagePtr = std::shared_ptr<PipelineStage>;

/// Per-stage execution counters.
struct StageRunStats {
  std::string name;
  int64_t items_in = 0;
  int64_t items_out = 0;
  uint64_t work_units = 0;

  double selectivity() const {
    return items_in == 0 ? 1.0
                         : static_cast<double>(items_out) /
                               static_cast<double>(items_in);
  }
};

/// Whole-run counters.
struct PipelineRunStats {
  std::vector<StageRunStats> stages;
  uint64_t total_work = 0;
  int64_t survivors = 0;

  std::string ToString() const;
};

/// An ordered chain of stages executed document-at-a-time.
class Pipeline {
 public:
  Pipeline() = default;

  void AddStage(StagePtr stage) { stages_.push_back(std::move(stage)); }
  const std::vector<StagePtr>& stages() const { return stages_; }
  size_t num_stages() const { return stages_.size(); }

  /// Runs `docs` through every stage in order. Stage state is Reset()
  /// first, so repeated runs are independent.
  std::vector<PipelineDoc> Run(std::vector<PipelineDoc> docs,
                               PipelineRunStats* stats = nullptr) const;

  /// Stage names joined by " -> " (plan display).
  std::string ToString() const;

 private:
  std::vector<StagePtr> stages_;
};

/// Options for the sample-driven pipeline optimizer.
struct PipelineOptimizerOptions {
  /// Documents sampled to measure per-stage cost and selectivity.
  size_t sample_size = 256;
  /// Master switch (benchmarks ablate with false = identity).
  bool enable_reordering = true;
};

/// Reorders commutable filter stages the way a query optimizer orders
/// predicates: measure per-stage unit cost c_i and selectivity s_i on a
/// sample, then sort each filter run (between transform barriers) by the
/// classic rank r_i = (s_i - 1) / c_i ascending — cheap-and-selective
/// first. This is the "apply query optimization principles to the AI data
/// pipeline" move from the panel's Alibaba/QWEN anecdote (E5).
class PipelineOptimizer {
 public:
  explicit PipelineOptimizer(PipelineOptimizerOptions options = {})
      : options_(options) {}

  /// Returns a reordered copy of `pipeline`. `sample_source` supplies the
  /// calibration documents (typically a prefix of the real input).
  Pipeline Optimize(const Pipeline& pipeline,
                    const std::vector<PipelineDoc>& sample_source) const;

  /// Measured (cost, selectivity) per stage from the last Optimize call's
  /// sampling pass; exposed for tests and reporting.
  struct StageEstimate {
    std::string name;
    double unit_cost = 0;     // work units per input document
    double selectivity = 1.0;
  };
  const std::vector<StageEstimate>& last_estimates() const {
    return last_estimates_;
  }

 private:
  PipelineOptimizerOptions options_;
  mutable std::vector<StageEstimate> last_estimates_;
};

/// Executes several pipelines that may share a common stage prefix,
/// materializing each shared prefix's output once and reusing it (the
/// "cache shared sub-DAGs" optimization). Stage identity is by pointer:
/// pipelines share a prefix when they contain the *same* StagePtr objects
/// in the same leading positions.
///
/// Returns one survivor list per pipeline; `saved_work` (optional) gets
/// the work units avoided versus running each pipeline independently.
std::vector<std::vector<PipelineDoc>> RunWithSharedPrefixes(
    const std::vector<const Pipeline*>& pipelines,
    const std::vector<PipelineDoc>& docs, uint64_t* saved_work = nullptr,
    uint64_t* total_work = nullptr);

}  // namespace agora

#endif  // AGORA_PIPELINE_PIPELINE_H_
