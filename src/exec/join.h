#ifndef AGORA_EXEC_JOIN_H_
#define AGORA_EXEC_JOIN_H_

#include <vector>

#include "exec/hash_table.h"
#include "exec/physical_op.h"
#include "expr/expr.h"

namespace agora {

enum class PhysicalJoinKind { kInner, kLeftOuter, kCross };

/// Hash join: materializes and hashes the RIGHT (build) child, then
/// streams the LEFT (probe) child. Output schema is left ⊕ right. NULL
/// keys never match; kLeftOuter emits unmatched probe rows padded with
/// NULLs.
///
/// Keys are hashed column-at-a-time into a JoinHashTable whose build-side
/// rows are hash-partitioned (`hash % P`); with a worker pool available
/// the P partition directories are filled by parallel workers, each
/// owning its partition outright. Chains iterate in ascending build-row
/// order, so probe output is identical for every partition and worker
/// count. Probing is read-only after Open(), exposed per-chunk via
/// ProbeChunk() so the morsel pipeline can run probes on any worker; a
/// build-side Bloom filter rejects most matchless probe rows before they
/// touch the slot directory. Build and probe book their self time into
/// separate phase slots (EXPLAIN ANALYZE shows HashJoin::build/::probe).
class PhysicalHashJoin : public PhysicalOperator {
 public:
  /// `left_keys[i]` (over the left schema) must equal `right_keys[i]`
  /// (over the right schema) for a match; the planner guarantees matching
  /// key types. `residual` (over left ⊕ right) further filters matches.
  PhysicalHashJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                   std::vector<ExprPtr> left_keys,
                   std::vector<ExprPtr> right_keys, ExprPtr residual,
                   PhysicalJoinKind kind, ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "HashJoin"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

  /// Joins one probe chunk against the built table. Thread-safe once
  /// Open() returned; used by both the serial Next() loop and parallel
  /// morsel workers. `*out` may come back empty.
  Status ProbeChunk(const Chunk& probe, Chunk* out, ExecStats* stats) const;

  PhysicalOperator* probe_child() const { return left_.get(); }

  std::vector<OperatorPhase> phases() const override {
    return {{"build", build_phase_id_}, {"probe", probe_phase_id_}};
  }

 private:
  /// Evaluates build keys, precomputes row hashes, and fills the
  /// partitioned table (in parallel when a pool is available).
  Status BuildTable();

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;
  PhysicalJoinKind kind_;
  int build_phase_id_ = -1;
  int probe_phase_id_ = -1;

  Chunk build_data_;                      // materialized right side
  std::vector<ColumnVector> build_keys_;  // evaluated right key columns
  std::vector<uint64_t> build_hashes_;    // per-row combined key hash
  std::vector<uint8_t> build_valid_;      // 0 = some key was NULL
  JoinHashTable table_;
  bool probe_done_ = false;
};

/// Nested-loop join: materializes the right child and pairs every probe
/// row with every build row, evaluating `condition` (if any). Used for
/// cross joins and non-equi conditions — and as the deliberately naive
/// baseline when the optimizer is disabled (experiment E4).
class PhysicalNestedLoopJoin : public PhysicalOperator {
 public:
  PhysicalNestedLoopJoin(PhysicalOpPtr left, PhysicalOpPtr right,
                         ExprPtr condition, PhysicalJoinKind kind,
                         ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "NestedLoopJoin"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  ExprPtr condition_;
  PhysicalJoinKind kind_;

  Chunk build_data_;
  bool probe_done_ = false;
};

}  // namespace agora

#endif  // AGORA_EXEC_JOIN_H_
