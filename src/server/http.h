#ifndef AGORA_SERVER_HTTP_H_
#define AGORA_SERVER_HTTP_H_

// Minimal HTTP/1.1 wire layer for the AgoraDB server: an incremental
// request parser and a response serializer. Deliberately socket-free —
// the parser consumes byte ranges and the serializer produces a string,
// so the whole layer unit-tests without a network (tests/test_server.cc
// feeds it malformed and truncated frames directly).
//
// Scope: the subset the front end needs. Request line + headers +
// Content-Length bodies; no chunked transfer encoding, trailers, or
// continuation lines — requests using them are rejected with a clean
// 4xx/5xx rather than misparsed.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace agora {

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim, case-sensitive)
  std::string target;   // request target, e.g. "/query"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// One HTTP response under construction. `Serialize*` renders the status
/// line, the explicit headers, a computed Content-Length and the body.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Standard reason phrase for `status` ("OK", "Bad Request", ...).
std::string_view HttpReasonPhrase(int status);

/// Renders `response` as an HTTP/1.1 message. Appends Content-Length
/// always and `Connection: close` when `close_connection` is set.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool close_connection);

/// Parser resource limits. Oversized frames fail with 431 (headers) or
/// 413 (body) instead of buffering without bound.
struct HttpParserLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 * 1024 * 1024;
};

/// Incremental HTTP/1.1 request parser. Feed() raw bytes as they arrive;
/// once it returns kDone, `request()` is complete and `ConsumeRequest()`
/// re-arms the parser for the next request on the same connection
/// (pipelined leftover bytes are retained). On kError, `error_status()`
/// is the HTTP status to answer before closing.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kDone, kError };

  explicit HttpRequestParser(HttpParserLimits limits = {})
      : limits_(limits) {}

  /// Appends `data` to the internal buffer and advances the parse.
  /// Idempotent after kDone/kError (extra bytes are buffered untouched).
  State Feed(const char* data, size_t size);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }

  /// HTTP status describing the parse failure (400/413/431/505).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Drops the completed request and restarts parsing at the first
  /// unconsumed byte (keep-alive reuse). Only valid in kDone.
  void ConsumeRequest();

 private:
  State Fail(int status, std::string message);
  /// Attempts to parse buffer_[0..) into request_; updates state_.
  void TryParse();

  HttpParserLimits limits_;
  std::string buffer_;
  size_t body_start_ = 0;      // offset of the body once headers parsed
  size_t content_length_ = 0;  // declared body size once headers parsed
  bool headers_done_ = false;
  HttpRequest request_;
  State state_ = State::kNeedMore;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace agora

#endif  // AGORA_SERVER_HTTP_H_
