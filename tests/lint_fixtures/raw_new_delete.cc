// Golden violation fixture for scripts/agora_lint.py (never compiled):
// raw new/delete in operator/optimizer code; ownership belongs to
// unique_ptr/shared_ptr or the Arena.
// lint-as: src/optimizer/bad_alloc.cc
// expect-violation: raw-new-delete

namespace agora {

void LeakProneScratch() {
  int* buffer = new int[1024];
  buffer[0] = 0;
  delete[] buffer;
}

}  // namespace agora
