#ifndef AGORA_EXEC_AGGREGATE_H_
#define AGORA_EXEC_AGGREGATE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/physical_op.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"

namespace agora {

/// Blocking hash aggregation. Consumes the whole child in Open(), then
/// streams result groups. Output schema: [group keys..., aggregates...].
/// With no group keys, emits exactly one row (SQL scalar-aggregate rule).
class PhysicalHashAggregate : public PhysicalOperator {
 public:
  PhysicalHashAggregate(PhysicalOpPtr child, std::vector<ExprPtr> group_by,
                        std::vector<AggregateSpec> aggregates, Schema schema,
                        ExecContext* context);

  Status Open() override;
  Status Next(Chunk* chunk, bool* done) override;
  std::string name() const override { return "HashAggregate"; }

 private:
  struct AggState {
    int64_t count = 0;       // COUNT / AVG / STDDEV denominator
    double sum_d = 0;        // SUM/AVG accumulator (double path)
    double sum_sq = 0;       // STDDEV/VARIANCE accumulator
    int64_t sum_i = 0;       // SUM accumulator (int64 path)
    Value min_max;           // running MIN or MAX
    bool has_value = false;  // any non-null input seen
    std::set<std::string> distinct_seen;  // DISTINCT dedup keys
  };

  struct GroupState {
    std::vector<Value> keys;
    std::vector<AggState> aggs;
  };

  Status Accumulate(const Chunk& input);
  void FinalizeInto(Chunk* out, const GroupState& group) const;

  PhysicalOpPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggregateSpec> aggregates_;

  std::unordered_map<std::string, GroupState> groups_;
  std::vector<const GroupState*> ordered_groups_;  // stable output order
  size_t next_group_ = 0;
};

}  // namespace agora

#endif  // AGORA_EXEC_AGGREGATE_H_
