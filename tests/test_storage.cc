// Tests for columnar storage: ColumnVector, Chunk, Table (zone maps,
// indexes, sorted copies), Catalog and CSV import/export.

#include <gtest/gtest.h>

#include <sstream>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/table.h"

namespace agora {
namespace {

TEST(ColumnVectorTest, AppendAndAccessAllTypes) {
  ColumnVector ints(TypeId::kInt64);
  ints.AppendInt64(5);
  ints.AppendNull();
  EXPECT_EQ(ints.size(), 2u);
  EXPECT_EQ(ints.GetInt64(0), 5);
  EXPECT_TRUE(ints.IsNull(1));
  EXPECT_FALSE(ints.AllValid());

  ColumnVector strs(TypeId::kString);
  strs.AppendString("abc");
  EXPECT_EQ(strs.GetString(0), "abc");
  EXPECT_TRUE(strs.AllValid());

  ColumnVector bools(TypeId::kBool);
  bools.AppendBool(true);
  EXPECT_TRUE(bools.GetBool(0));

  ColumnVector dates(TypeId::kDate);
  dates.AppendValue(Value::Date(100));
  EXPECT_EQ(dates.GetValue(0).ToString(), DateToString(100));
}

TEST(ColumnVectorTest, GatherAndSlice) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 10; ++i) col.AppendInt64(i * 10);
  ColumnVector gathered = col.Gather({9, 0, 5});
  ASSERT_EQ(gathered.size(), 3u);
  EXPECT_EQ(gathered.GetInt64(0), 90);
  EXPECT_EQ(gathered.GetInt64(1), 0);
  EXPECT_EQ(gathered.GetInt64(2), 50);

  ColumnVector sliced = col.Slice(3, 4);
  ASSERT_EQ(sliced.size(), 4u);
  EXPECT_EQ(sliced.GetInt64(0), 30);
  EXPECT_EQ(sliced.GetInt64(3), 60);
}

TEST(ColumnVectorTest, CompareRowsWithNulls) {
  ColumnVector col(TypeId::kDouble);
  col.AppendNull();
  col.AppendDouble(1.5);
  col.AppendDouble(2.5);
  EXPECT_LT(col.CompareRows(0, col, 1), 0);  // NULL first
  EXPECT_EQ(col.CompareRows(0, col, 0), 0);
  EXPECT_LT(col.CompareRows(1, col, 2), 0);
  EXPECT_GT(col.CompareRows(2, col, 1), 0);
}

TEST(ColumnVectorTest, SetValueMutatesInPlace) {
  ColumnVector col(TypeId::kInt64);
  col.AppendInt64(1);
  col.SetValue(0, Value::Int64(9));
  EXPECT_EQ(col.GetInt64(0), 9);
  col.SetValue(0, Value::Null());
  EXPECT_TRUE(col.IsNull(0));
}

TEST(ChunkTest, AppendRowsAndGather) {
  Schema schema({{"a", TypeId::kInt64, false}, {"b", TypeId::kString, true}});
  Chunk chunk(schema);
  chunk.AppendRow({Value::Int64(1), Value::String("x")});
  chunk.AppendRow({Value::Int64(2), Value::Null()});
  EXPECT_EQ(chunk.num_rows(), 2u);
  auto row = chunk.RowValues(1);
  EXPECT_EQ(row[0].int64_value(), 2);
  EXPECT_TRUE(row[1].is_null());

  Chunk selected = chunk.GatherRows({1});
  EXPECT_EQ(selected.num_rows(), 1u);
  EXPECT_EQ(selected.column(0).GetInt64(0), 2);
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        "t", Schema({{"k", TypeId::kInt64, false},
                     {"v", TypeId::kString, true},
                     {"d", TypeId::kDouble, true}}));
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(table_->AppendRow({Value::Int64(i),
                                     Value::String("s" + std::to_string(i % 7)),
                                     Value::Double(i * 0.5)}).ok());
    }
  }
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, AppendAndGetChunk) {
  EXPECT_EQ(table_->num_rows(), 5000u);
  Chunk chunk = table_->GetChunk(2048, 2048);
  EXPECT_EQ(chunk.num_rows(), 2048u);
  EXPECT_EQ(chunk.column(0).GetInt64(0), 2048);
  // Tail chunk is short.
  Chunk tail = table_->GetChunk(4096, 2048);
  EXPECT_EQ(tail.num_rows(), 904u);
  // Projection returns a column subset.
  Chunk projected = table_->GetChunk(0, 10, {2, 0});
  EXPECT_EQ(projected.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(projected.column(0).GetDouble(3), 1.5);
  EXPECT_EQ(projected.column(1).GetInt64(3), 3);
}

TEST_F(TableTest, RowTypeCoercionAndErrors) {
  // Int literal into double column coerces.
  ASSERT_TRUE(table_->AppendRow({Value::Int64(9999), Value::String("x"),
                                 Value::Int64(3)}).ok());
  EXPECT_DOUBLE_EQ(table_->column(2).GetDouble(5000), 3.0);
  // Wrong arity fails.
  EXPECT_FALSE(table_->AppendRow({Value::Int64(1)}).ok());
}

TEST_F(TableTest, ZoneMapsBoundBlocks) {
  table_->BuildZoneMaps();
  ASSERT_TRUE(table_->HasZoneMaps());
  std::shared_ptr<const ZoneMap> zm = table_->GetZoneMap(0);
  ASSERT_NE(zm, nullptr);
  ASSERT_EQ(zm->blocks.size(), (5000 + kChunkSize - 1) / kChunkSize);
  // Block 0 holds keys [0, 2047].
  EXPECT_DOUBLE_EQ(zm->blocks[0].min, 0);
  EXPECT_DOUBLE_EQ(zm->blocks[0].max, 2047);
  EXPECT_TRUE(zm->BlockMayMatch(0, 100, 200));
  EXPECT_FALSE(zm->BlockMayMatch(0, 3000, 4000));
  // String column has no zone map.
  EXPECT_EQ(table_->GetZoneMap(1), nullptr);
}

TEST_F(TableTest, ZoneMapsInvalidatedByAppend) {
  table_->BuildZoneMaps();
  ASSERT_TRUE(table_->HasZoneMaps());
  ASSERT_TRUE(table_->AppendRow({Value::Int64(-1), Value::Null(),
                                 Value::Null()}).ok());
  EXPECT_FALSE(table_->HasZoneMaps());
}

TEST_F(TableTest, HashIndexProbe) {
  ASSERT_TRUE(table_->BuildHashIndex("idx_k", 0).ok());
  std::shared_ptr<const HashIndex> index = table_->GetHashIndex(0);
  ASSERT_NE(index, nullptr);
  uint64_t hash = table_->column(0).HashRow(123);
  auto candidates = index->Probe(hash);
  // The true row must be among the candidates.
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 123),
            candidates.end());
  EXPECT_EQ(table_->GetHashIndex(1), nullptr);
}

TEST_F(TableTest, SortedCopyPreservesRowsChangesOrder) {
  // Sort by the string column (7 distinct values).
  auto sorted = table_->SortedCopy("t_sorted", 1);
  ASSERT_EQ(sorted->num_rows(), table_->num_rows());
  for (size_t r = 1; r < sorted->num_rows(); ++r) {
    EXPECT_LE(sorted->column(1).GetString(r - 1),
              sorted->column(1).GetString(r));
  }
  // Content preserved: sum of key column identical.
  int64_t sum_orig = 0, sum_sorted = 0;
  for (size_t r = 0; r < table_->num_rows(); ++r) {
    sum_orig += table_->column(0).GetInt64(r);
    sum_sorted += sorted->column(0).GetInt64(r);
  }
  EXPECT_EQ(sum_orig, sum_sorted);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto t = catalog.CreateTable("Foo", Schema({{"a", TypeId::kInt64, false}}));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(catalog.HasTable("foo"));  // case-insensitive
  EXPECT_TRUE(catalog.HasTable("FOO"));
  auto dup = catalog.CreateTable("foo", Schema());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto got = catalog.GetTable("foo");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->name(), "Foo");
  EXPECT_EQ(catalog.TableNames().size(), 1u);
  ASSERT_TRUE(catalog.DropTable("FOO").ok());
  EXPECT_EQ(catalog.GetTable("foo").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.DropTable("foo").code(), StatusCode::kNotFound);
}

TEST(CsvTest, ReadBasic) {
  std::istringstream in(
      "id,name,score,joined\n"
      "1,alice,9.5,2020-01-15\n"
      "2,bob,,2021-06-01\n"
      "3,\"c,d\",7.25,2022-12-31\n");
  Schema schema({{"id", TypeId::kInt64, false},
                 {"name", TypeId::kString, false},
                 {"score", TypeId::kDouble, true},
                 {"joined", TypeId::kDate, false}});
  auto table = ReadCsv(in, "people", schema);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_rows(), 3u);
  EXPECT_TRUE((*table)->column(2).IsNull(1));  // empty -> NULL
  EXPECT_EQ((*table)->column(1).GetString(2), "c,d");  // quoted comma
  EXPECT_EQ((*table)->column(3).GetInt64(0), MakeDate(2020, 1, 15));
}

TEST(CsvTest, QuotedEscapesAndCrlf) {
  std::istringstream in("v\n\"he said \"\"hi\"\"\"\r\n");
  Schema schema({{"v", TypeId::kString, false}});
  auto table = ReadCsv(in, "q", schema);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->column(0).GetString(0), "he said \"hi\"");
}

TEST(CsvTest, FieldCountMismatchFails) {
  std::istringstream in("a,b\n1,2\n3\n");
  Schema schema(
      {{"a", TypeId::kInt64, false}, {"b", TypeId::kInt64, false}});
  auto table = ReadCsv(in, "bad", schema);
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, BadValueFailsWithLineNumber) {
  std::istringstream in("a\n1\nxyz\n");
  Schema schema({{"a", TypeId::kInt64, false}});
  auto table = ReadCsv(in, "bad", schema);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table table("rt", Schema({{"n", TypeId::kInt64, false},
                            {"s", TypeId::kString, true}}));
  ASSERT_TRUE(table.AppendRow({Value::Int64(1),
                               Value::String("plain")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int64(2),
                               Value::String("with,comma")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int64(3),
                               Value::String("with\"quote")}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(table, out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "rt2", table.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ((*back)->num_rows(), 3u);
  EXPECT_EQ((*back)->column(1).GetString(1), "with,comma");
  EXPECT_EQ((*back)->column(1).GetString(2), "with\"quote");
}

}  // namespace
}  // namespace agora
