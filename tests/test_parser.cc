// Tests for the SQL tokenizer and parser (syntax only; binding is covered
// by the engine tests).

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/tokenizer.h"

namespace agora {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE x >= 3.5;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 12u);  // 11 tokens + EOF
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[8].text, ">=");
  EXPECT_EQ((*tokens)[9].text, "3.5");
  EXPECT_EQ((*tokens)[9].type, TokenType::kNumber);
}

TEST(TokenizerTest, StringsWithEscapes) {
  auto tokens = Tokenize("'it''s' 'two'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
  EXPECT_EQ((*tokens)[1].text, "two");
}

TEST(TokenizerTest, QuotedIdentifiers) {
  auto tokens = Tokenize("\"weird name\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "weird name");
}

TEST(TokenizerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- everything\n1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].text, "1");
}

TEST(TokenizerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("\"open").ok());
}

TEST(TokenizerTest, ScientificNumbers) {
  auto tokens = Tokenize("1e5 2.5E-3 .25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "1e5");
  EXPECT_EQ((*tokens)[1].text, "2.5E-3");
  EXPECT_EQ((*tokens)[2].text, ".25");
}

Result<SelectStatement> ParseSelect(const std::string& sql) {
  AGORA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (auto* sel = std::get_if<SelectStatement>(&stmt.node)) {
    return *sel;
  }
  return Status::Internal("not a select");
}

TEST(ParserTest, MinimalSelect) {
  auto sel = ParseSelect("SELECT * FROM t");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->items.size(), 1u);
  EXPECT_TRUE(sel->items[0].is_star);
  ASSERT_EQ(sel->from.size(), 1u);
  EXPECT_EQ(sel->from[0].name, "t");
}

TEST(ParserTest, FullSelectShape) {
  auto sel = ParseSelect(
      "SELECT DISTINCT a, b + 1 AS c FROM t1 x, t2 "
      "JOIN t3 ON x.id = t3.id LEFT JOIN t4 ON t3.k = t4.k "
      "WHERE a > 0 AND b IN (1, 2) GROUP BY a, b HAVING COUNT(*) > 2 "
      "ORDER BY c DESC, a LIMIT 10 OFFSET 5");
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_TRUE(sel->distinct);
  ASSERT_EQ(sel->items.size(), 2u);
  EXPECT_EQ(sel->items[1].alias, "c");
  ASSERT_EQ(sel->from.size(), 2u);
  EXPECT_EQ(sel->from[0].alias, "x");
  ASSERT_EQ(sel->joins.size(), 2u);
  EXPECT_EQ(sel->joins[0].kind, JoinKind::kInner);
  EXPECT_EQ(sel->joins[1].kind, JoinKind::kLeft);
  ASSERT_NE(sel->where, nullptr);
  EXPECT_EQ(sel->group_by.size(), 2u);
  ASSERT_NE(sel->having, nullptr);
  ASSERT_EQ(sel->order_by.size(), 2u);
  EXPECT_TRUE(sel->order_by[0].descending);
  EXPECT_FALSE(sel->order_by[1].descending);
  EXPECT_EQ(sel->limit, 10);
  EXPECT_EQ(sel->offset, 5);
}

TEST(ParserTest, OperatorPrecedence) {
  auto sel = ParseSelect("SELECT a + b * c - d FROM t");
  ASSERT_TRUE(sel.ok());
  // ((a + (b * c)) - d)
  EXPECT_EQ(sel->items[0].expr->ToString(), "((a + (b * c)) - d)");

  auto logic = ParseSelect("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(logic.ok());
  EXPECT_EQ(logic->where->ToString(),
            "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto sel = ParseSelect("SELECT (a + b) * c FROM t");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->items[0].expr->ToString(), "((a + b) * c)");
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  auto sel = ParseSelect("SELECT -5, -2.5, -x FROM t");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->items[0].expr->kind, ParsedExprKind::kLiteral);
  EXPECT_EQ(sel->items[0].expr->literal.int64_value(), -5);
  EXPECT_DOUBLE_EQ(sel->items[1].expr->literal.double_value(), -2.5);
  EXPECT_EQ(sel->items[2].expr->kind, ParsedExprKind::kUnary);
}

TEST(ParserTest, PredicateSugar) {
  auto sel = ParseSelect(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT LIKE 'x%' "
      "AND c IS NOT NULL AND d NOT IN (1, 2) AND e NOT BETWEEN 0 AND 1");
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  std::string where = sel->where->ToString();
  EXPECT_NE(where.find("BETWEEN"), std::string::npos);
  EXPECT_NE(where.find("NOT LIKE"), std::string::npos);
  EXPECT_NE(where.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(where.find("NOT IN"), std::string::npos);
  EXPECT_NE(where.find("NOT BETWEEN"), std::string::npos);
}

TEST(ParserTest, DateLiteralAndCast) {
  auto sel = ParseSelect(
      "SELECT CAST(a AS DOUBLE) FROM t WHERE d < DATE '1998-12-01'");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->items[0].expr->kind, ParsedExprKind::kCast);
  EXPECT_EQ(sel->items[0].expr->cast_type, TypeId::kDouble);
  // DATE literal parsed into a date-typed value.
  const ParsedExpr& where = *sel->where;
  EXPECT_EQ(where.children[1]->literal.type(), TypeId::kDate);
}

TEST(ParserTest, FunctionCallsAndCountStar) {
  auto sel = ParseSelect(
      "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b * 2), LOWER(name) FROM t");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->items[0].expr->kind, ParsedExprKind::kCall);
  EXPECT_EQ(sel->items[0].expr->children[0]->kind, ParsedExprKind::kStar);
  EXPECT_TRUE(sel->items[1].expr->distinct);
  EXPECT_EQ(sel->items[2].expr->children[0]->kind, ParsedExprKind::kBinary);
}

TEST(ParserTest, CaseWhen) {
  auto sel = ParseSelect(
      "SELECT CASE WHEN a > 1 THEN 'big' WHEN a > 0 THEN 'small' "
      "ELSE 'neg' END FROM t");
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  const ParsedExpr& c = *sel->items[0].expr;
  EXPECT_EQ(c.kind, ParsedExprKind::kCase);
  EXPECT_TRUE(c.case_has_else);
  EXPECT_EQ(c.children.size(), 5u);  // 2 pairs + else
}

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE IF NOT EXISTS t (id BIGINT PRIMARY KEY, "
      "name VARCHAR(40) NOT NULL, score DOUBLE)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& ct = std::get<CreateTableStatement>(stmt->node);
  EXPECT_TRUE(ct.if_not_exists);
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.columns[0].type, TypeId::kInt64);
  EXPECT_EQ(ct.columns[1].type, TypeId::kString);
  EXPECT_EQ(ct.columns[2].type, TypeId::kDouble);
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = ParseStatement(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStatement>(stmt->node);
  EXPECT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.rows.size(), 2u);
}

TEST(ParserTest, ExplainFlag) {
  auto stmt = ParseStatement("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->explain);
}

TEST(ParserTest, DropAndCreateIndex) {
  auto drop = ParseStatement("DROP TABLE IF EXISTS t;");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(std::get<DropTableStatement>(drop->node).if_exists);
  auto index = ParseStatement("CREATE INDEX i ON t (col)");
  ASSERT_TRUE(index.ok());
  const auto& ci = std::get<CreateIndexStatement>(index->node);
  EXPECT_EQ(ci.index, "i");
  EXPECT_EQ(ci.column, "col");
}

TEST(ParserTest, SyntaxErrorsCarryPosition) {
  auto bad = ParseStatement("SELECT FROM t");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);

  EXPECT_FALSE(ParseStatement("SELECT * FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t (a NOTATYPE)").ok());
}

TEST(ParserTest, TrailingSemicolonAndCaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseStatement("select * from t;").ok());
  EXPECT_TRUE(ParseStatement("SeLeCt a FrOm t WhErE a = 1").ok());
}

TEST(ParserTest, InListRequiresLiterals) {
  auto bad = ParseStatement("SELECT * FROM t WHERE a IN (b, c)");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace agora
