#ifndef AGORA_COMMON_RESULT_H_
#define AGORA_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace agora {

/// Holds either a value of type `T` or a non-OK `Status` (Arrow's
/// `Result<T>` idiom). Accessing the value of an errored result aborts;
/// callers must check `ok()` first or use AGORA_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; intentional for ergonomic returns.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must be non-OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) std::abort();
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns OK if a value is present, else the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(data_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace agora

#define AGORA_CONCAT_IMPL_(a, b) a##b
#define AGORA_CONCAT_(a, b) AGORA_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define AGORA_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  AGORA_ASSIGN_OR_RETURN_IMPL_(                                   \
      AGORA_CONCAT_(_agora_result_, __LINE__), lhs, rexpr)

#define AGORA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // AGORA_COMMON_RESULT_H_
