// Tests for the fused hybrid (vector + keyword + relational) executor and
// its federated baseline.

#include <gtest/gtest.h>

#include "hybrid/collection.h"

namespace agora {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SyntheticHybridData(
        MakeSyntheticHybridData(/*n=*/2000, /*dim=*/16, /*topics=*/4));
    IvfOptions ivf;
    ivf.nlist = 32;
    ivf.nprobe = 8;
    collection_ = new HybridCollection(data_->attr_schema, 16, ivf);
    for (const HybridDoc& doc : data_->docs) {
      ASSERT_TRUE(collection_->Add(doc).ok());
    }
    ASSERT_TRUE(collection_->BuildIndexes().ok());
  }
  static void TearDownTestSuite() {
    delete collection_;
    delete data_;
    collection_ = nullptr;
    data_ = nullptr;
  }

  static HybridQuery TopicQuery(size_t topic, std::string filter = "") {
    HybridQuery q;
    q.keywords = data_->topic_names[topic];
    q.embedding = data_->topic_centroids[topic];
    q.filter_sql = std::move(filter);
    q.k = 10;
    return q;
  }

  static SyntheticHybridData* data_;
  static HybridCollection* collection_;
};

SyntheticHybridData* HybridTest::data_ = nullptr;
HybridCollection* HybridTest::collection_ = nullptr;

TEST_F(HybridTest, VectorOnlySearchFindsTopicCluster) {
  HybridQuery q;
  q.embedding = data_->topic_centroids[0];
  q.k = 10;
  auto result = collection_->Search(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 10u);
  // All hits should carry a vector score, no keyword score.
  for (const ScoredDoc& d : *result) {
    EXPECT_GT(d.vector_score, 0);
    EXPECT_EQ(d.keyword_score, 0);
  }
}

TEST_F(HybridTest, KeywordOnlySearchMatchesTopic) {
  HybridQuery q;
  q.keywords = data_->topic_names[1];
  q.k = 10;
  auto result = collection_->Search(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 10u);
  for (const ScoredDoc& d : *result) {
    EXPECT_GT(d.keyword_score, 0);
  }
}

TEST_F(HybridTest, EmptyQueryRejected) {
  HybridQuery q;
  q.k = 5;
  EXPECT_EQ(collection_->Search(q).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HybridTest, FilterIsRespected) {
  HybridQuery q = TopicQuery(0, "price < 20");
  auto result = collection_->Search(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Verify every returned doc satisfies the filter.
  for (const ScoredDoc& d : *result) {
    const HybridDoc& doc = data_->docs[static_cast<size_t>(d.id)];
    EXPECT_LT(doc.attrs[1].double_value(), 20.0) << "doc " << d.id;
  }
}

TEST_F(HybridTest, SelectiveFilterTriggersPrefilter) {
  HybridQueryStats stats;
  // rating = 5 AND price < 5 is very selective (~1%).
  HybridQuery q = TopicQuery(0, "rating = 5 AND price < 5");
  auto result = collection_->Search(q, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.strategy, "prefilter");
  // Pre-filter evaluates the predicate on every row exactly once.
  EXPECT_EQ(stats.filter_rows_evaluated, collection_->size());
}

TEST_F(HybridTest, LooseFilterTriggersPostfilter) {
  HybridQueryStats stats;
  HybridQuery q = TopicQuery(0, "price < 90");  // ~90% pass
  auto result = collection_->Search(q, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.strategy, "postfilter");
  // Post-filter only touches candidate rows, far fewer than the table.
  EXPECT_LT(stats.filter_rows_evaluated, collection_->size());
}

TEST_F(HybridTest, ForcedStrategiesAgreeOnSelectiveFilters) {
  HybridQuery q = TopicQuery(2, "rating >= 4 AND price < 30");
  HybridExecOptions pre;
  pre.strategy = HybridStrategy::kPreFilter;
  auto a = collection_->Search(q, pre);
  ASSERT_TRUE(a.ok());
  auto exact = collection_->SearchExact(q);
  ASSERT_TRUE(exact.ok());
  // Pre-filter is exact: must match the brute-force reference ids.
  ASSERT_EQ(a->size(), exact->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].id, (*exact)[i].id) << "rank " << i;
  }
}

TEST_F(HybridTest, PostfilterRecallIsReasonable) {
  // Vector-only + filter isolates the IVF-with-post-filter mechanism:
  // with both modalities, fusing truncated candidate lists is a
  // *different ranking* than fusing complete lists, so id-overlap with
  // the full-list oracle is not a meaningful recall measure there.
  HybridQuery q;
  q.embedding = data_->topic_centroids[3];
  q.filter_sql = "in_stock = TRUE";
  q.k = 10;
  HybridExecOptions post;
  post.strategy = HybridStrategy::kPostFilter;
  auto approx = collection_->Search(q, post);
  auto exact = collection_->SearchExact(q);
  ASSERT_TRUE(approx.ok() && exact.ok());
  // Measure overlap of ids.
  std::unordered_set<int64_t> truth;
  for (const ScoredDoc& d : *exact) truth.insert(d.id);
  size_t hits = 0;
  for (const ScoredDoc& d : *approx) {
    if (truth.count(d.id) > 0) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(exact->size()),
            0.5);
}

TEST_F(HybridTest, FederatedMatchesFusedResultsOnLooseFilters) {
  HybridQuery q = TopicQuery(1, "price < 95");
  auto fused = collection_->Search(q);
  auto federated = collection_->SearchFederated(q);
  ASSERT_TRUE(fused.ok() && federated.ok());
  EXPECT_EQ(fused->size(), q.k);
  EXPECT_EQ(federated->size(), q.k);
}

TEST_F(HybridTest, FederatedPaysOverfetchOnSelectiveFilters) {
  HybridQuery q = TopicQuery(0, "rating = 5 AND price < 10");
  HybridQueryStats fused_stats, federated_stats;
  auto fused = collection_->Search(q, {}, &fused_stats);
  auto federated = collection_->SearchFederated(q, &federated_stats);
  ASSERT_TRUE(fused.ok() && federated.ok());
  // The bolted-together system re-queries with doubled k; the fused
  // engine (prefilter) never retries.
  EXPECT_EQ(fused_stats.retries, 0u);
  EXPECT_GT(federated_stats.retries, 0u);
  // And it burns more vector distance computations than the filtered
  // exact scan over the tiny survivor set.
  EXPECT_GT(federated_stats.vector_distances,
            fused_stats.vector_distances);
}

TEST_F(HybridTest, RrfFusionRanksDoublyMatchedDocsFirst) {
  HybridQuery q = TopicQuery(2);
  q.fusion = ScoreFusion::kRrf;
  auto result = collection_->Search(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), q.k);
  // The top result should match on both modalities for a topical query.
  EXPECT_GT((*result)[0].keyword_score, 0);
  EXPECT_GT((*result)[0].vector_score, 0);
}

TEST_F(HybridTest, WeightsShiftRanking) {
  HybridQuery kw = TopicQuery(1);
  kw.keyword_weight = 1.0;
  kw.vector_weight = 0.0;
  HybridQuery vec = TopicQuery(1);
  vec.keyword_weight = 0.0;
  vec.vector_weight = 1.0;
  auto a = collection_->Search(kw);
  auto b = collection_->Search(vec);
  ASSERT_TRUE(a.ok() && b.ok());
  // Pure-keyword ordering must be by BM25 descending.
  for (size_t i = 1; i < a->size(); ++i) {
    EXPECT_GE((*a)[i - 1].keyword_score, (*a)[i].keyword_score);
  }
  // Pure-vector ordering must be by similarity descending.
  for (size_t i = 1; i < b->size(); ++i) {
    EXPECT_GE((*b)[i - 1].vector_score, (*b)[i].vector_score);
  }
}

TEST_F(HybridTest, AddAfterBuildRejected) {
  HybridDoc doc = data_->docs[0];
  EXPECT_EQ(collection_->Add(doc).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HybridTest, BadFilterSurfacesBindError) {
  HybridQuery q = TopicQuery(0, "no_such_column = 1");
  EXPECT_EQ(collection_->Search(q).status().code(), StatusCode::kBindError);
}

}  // namespace
}  // namespace agora
