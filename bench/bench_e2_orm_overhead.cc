// E2 — ORM overhead: the N+1 lazy-loading pattern costs an order of
// magnitude more than one set-oriented join, and the cost lives in the
// access layer, not the DBMS.
//
// Paper quote (SIGMOD'25 panel, §3.3.1): "many performance problems are
// due to the ORM and never arise at the DBMS".

#include <map>

#include "bench/bench_common.h"
#include "orm/orm.h"

namespace agora {
namespace {

/// A cached database + ORM session with `n` customers x 5 orders.
struct OrmFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrmSession> session;
};

OrmFixture* GetFixture(int64_t n_customers) {
  static std::map<int64_t, std::unique_ptr<OrmFixture>>* cache =
      new std::map<int64_t, std::unique_ptr<OrmFixture>>();
  auto it = cache->find(n_customers);
  if (it != cache->end()) return it->second.get();

  auto fixture = std::make_unique<OrmFixture>();
  fixture->db = std::make_unique<Database>();
  Database* db = fixture->db.get();
  bench::MustExecute(db,
                     "CREATE TABLE customers (id BIGINT, name VARCHAR)");
  bench::MustExecute(
      db, "CREATE TABLE orders (id BIGINT, customer_id BIGINT, "
          "amount DOUBLE)");
  // Bulk-insert with multi-row statements for fast setup.
  std::string sql;
  for (int64_t c = 1; c <= n_customers; ++c) {
    if (sql.empty()) sql = "INSERT INTO customers VALUES ";
    sql += "(" + std::to_string(c) + ", 'c" + std::to_string(c) + "'),";
    if (c % 500 == 0 || c == n_customers) {
      sql.back() = ' ';
      bench::MustExecute(db, sql);
      sql.clear();
    }
  }
  int64_t order_id = 0;
  for (int64_t c = 1; c <= n_customers; ++c) {
    if (sql.empty()) sql = "INSERT INTO orders VALUES ";
    for (int o = 0; o < 5; ++o) {
      sql += "(" + std::to_string(++order_id) + ", " + std::to_string(c) +
             ", " + std::to_string(10 * c + o) + ".5),";
    }
    if (c % 100 == 0 || c == n_customers) {
      sql.back() = ' ';
      bench::MustExecute(db, sql);
      sql.clear();
    }
  }
  // Point lookups are what an ORM issues; index the hot columns.
  bench::MustExecute(db, "CREATE INDEX c_id ON customers (id)");
  bench::MustExecute(db, "CREATE INDEX o_cust ON orders (customer_id)");

  fixture->session = std::make_unique<OrmSession>(db);
  ModelDef customers;
  customers.table = "customers";
  customers.has_many.push_back({"orders", "orders", "customer_id"});
  fixture->session->RegisterModel(customers);
  ModelDef orders;
  orders.table = "orders";
  fixture->session->RegisterModel(orders);

  OrmFixture* raw = fixture.get();
  cache->emplace(n_customers, std::move(fixture));
  return raw;
}

/// ORM lazy path: fetch all customers, then touch each one's orders —
/// 1 + N statements.
void BM_OrmLazyNPlusOne(benchmark::State& state) {
  OrmFixture* fixture = GetFixture(state.range(0));
  OrmSession* session = fixture->session.get();
  double total = 0;
  for (auto _ : state) {
    session->ResetStatementCount();
    auto customers = session->All("customers");
    AGORA_CHECK(customers.ok());
    total = 0;
    for (const Entity& customer : *customers) {
      auto orders = session->Related(customer, "orders");
      AGORA_CHECK(orders.ok());
      for (const Entity& order : *orders) {
        total += order.Get("amount").AsDouble();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["statements"] =
      static_cast<double>(fixture->session->statements_issued());
  state.SetLabel("lazy ORM (N+1)");
}

/// ORM eager path: one join statement, grouped client-side.
void BM_OrmEagerJoin(benchmark::State& state) {
  OrmFixture* fixture = GetFixture(state.range(0));
  OrmSession* session = fixture->session.get();
  double total = 0;
  for (auto _ : state) {
    session->ResetStatementCount();
    auto grouped = session->EagerLoadChildren("customers", "orders");
    AGORA_CHECK(grouped.ok());
    total = 0;
    for (const auto& [key, orders] : *grouped) {
      for (const Entity& order : orders) {
        total += order.Get("amount").AsDouble();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["statements"] =
      static_cast<double>(fixture->session->statements_issued());
  state.SetLabel("eager ORM (1 stmt)");
}

/// What the DBMS does when asked properly: one aggregate query.
void BM_RawSqlAggregate(benchmark::State& state) {
  OrmFixture* fixture = GetFixture(state.range(0));
  Database* db = fixture->db.get();
  for (auto _ : state) {
    QueryResult result = bench::MustExecute(
        db, "SELECT SUM(amount) FROM orders");
    benchmark::DoNotOptimize(result.num_rows());
  }
  state.counters["statements"] = 1;
  state.SetLabel("set-oriented SQL");
}

BENCHMARK(BM_OrmLazyNPlusOne)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OrmEagerJoin)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RawSqlAggregate)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace agora

int main(int argc, char** argv) {
  agora::bench::PrintClaim(
      "E2: ORM overhead (the N+1 anti-pattern)",
      "\"many performance problems are due to the ORM and never arise at "
      "the DBMS\" (panel §3.3.1)",
      "lazy ORM issues 1+N statements and is >=10x slower than the single "
      "eager join at N>=500; the gap grows linearly with N while the DBMS "
      "answers the set-oriented form in one statement");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
