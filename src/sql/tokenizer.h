#ifndef AGORA_SQL_TOKENIZER_H_
#define AGORA_SQL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace agora {

enum class TokenType {
  kIdentifier,  // foo, "quoted"
  kNumber,      // 42, 3.14
  kString,      // 'text'
  kOperator,    // = <> < <= > >= + - * / % ( ) , . ;
  kEof,
};

/// One lexical token. `text` for identifiers is kept as written; keyword
/// recognition is case-insensitive and happens in the parser.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  size_t position = 0;  // byte offset in the source, for error messages

  bool Is(TokenType t) const { return type == t; }
};

/// Splits `sql` into tokens. Comments (`-- ...` to end of line) are
/// skipped. Fails on unterminated strings and unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace agora

#endif  // AGORA_SQL_TOKENIZER_H_
