#ifndef AGORA_VEC_IVF_INDEX_H_
#define AGORA_VEC_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "vec/flat_index.h"

namespace agora {

/// IVF-Flat tuning knobs (RocksDB-style options struct).
struct IvfOptions {
  /// Number of k-means partitions.
  size_t nlist = 64;
  /// Partitions probed per query; recall/latency trade-off.
  size_t nprobe = 8;
  size_t kmeans_iterations = 10;
  uint64_t seed = 7;
  Metric metric = Metric::kL2;
};

/// Inverted-file index with flat (uncompressed) residuals: vectors are
/// partitioned by nearest k-means centroid; queries scan only the
/// `nprobe` closest partitions. Approximate — recall grows with nprobe
/// and reaches 1.0 at nprobe == nlist.
class IvfFlatIndex {
 public:
  IvfFlatIndex(size_t dim, IvfOptions options)
      : dim_(dim), options_(options) {}

  size_t dim() const { return dim_; }
  const IvfOptions& options() const { return options_; }
  size_t size() const { return total_; }
  bool trained() const { return !centroids_.empty(); }

  /// Runs k-means over `sample` (plain Lloyd iterations, deterministic
  /// seeding). Must be called before Add.
  Status Train(const std::vector<Vecf>& sample);

  /// Assigns `v` to its nearest centroid's posting list.
  Status Add(int64_t id, const Vecf& v);

  /// Approximate top-k over the nprobe nearest partitions.
  Result<std::vector<Neighbor>> Search(const Vecf& query, size_t k) const;

  /// Same with an explicit probe count (benchmark sweeps). When
  /// `scanned_out` is non-null it receives the number of candidate
  /// vectors whose distance was computed (resource accounting).
  Result<std::vector<Neighbor>> SearchWithProbes(
      const Vecf& query, size_t k, size_t nprobe,
      size_t* scanned_out = nullptr) const;

  /// Number of vectors in partition `list` (distribution diagnostics).
  size_t ListSize(size_t list) const { return list_ids_[list].size(); }

  size_t MemoryBytes() const;

 private:
  size_t NearestCentroid(const float* v) const;

  size_t dim_;
  IvfOptions options_;
  std::vector<float> centroids_;             // nlist * dim
  std::vector<std::vector<int64_t>> list_ids_;
  std::vector<std::vector<float>> list_data_;  // per list, row-major
  size_t total_ = 0;
};

}  // namespace agora

#endif  // AGORA_VEC_IVF_INDEX_H_
