#ifndef AGORA_FTS_INVERTED_INDEX_H_
#define AGORA_FTS_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "fts/analyzer.h"

namespace agora {

/// One posting: a document, the term's frequency in it, and the token
/// positions at which it occurs (ascending; enables phrase queries).
struct Posting {
  int64_t doc_id;
  uint32_t term_frequency;
  std::vector<uint32_t> positions;
};

/// Multi-term query semantics.
enum class MatchMode {
  kAny,  // OR: a document matching any term scores (default)
  kAll,  // AND: only documents containing every query term score
};

/// A scored keyword-search hit.
struct SearchHit {
  int64_t doc_id;
  double score;
};

/// BM25 parameters (defaults are the standard Robertson values).
struct Bm25Options {
  double k1 = 1.2;
  double b = 0.75;
};

/// In-memory inverted index with BM25 ranking.
///
/// Documents are identified by caller-provided int64 ids (the hybrid layer
/// uses row ids). Term dictionary and postings grow append-only; removing
/// documents is not supported (rebuild instead, as most batch search
/// systems do).
class InvertedIndex {
 public:
  explicit InvertedIndex(AnalyzerOptions analyzer = {})
      : analyzer_(analyzer) {}

  /// Indexes `text` under `doc_id`. Ids must be unique across Add calls.
  void AddDocument(int64_t doc_id, std::string_view text);

  size_t num_docs() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }

  /// Document frequency of an (analyzed) term; 0 if absent.
  size_t DocFrequency(const std::string& term) const;

  /// Raw postings list for a term (empty if absent). Sorted by doc id.
  const std::vector<Posting>& GetPostings(const std::string& term) const;

  /// Top-k BM25 search over the analyzed terms of `query`. Ties break
  /// toward smaller doc ids for determinism.
  std::vector<SearchHit> Search(std::string_view query, size_t k,
                                const Bm25Options& options = {},
                                MatchMode mode = MatchMode::kAny) const;

  /// Top-k phrase search: only documents where the analyzed terms of
  /// `phrase` occur consecutively (in order) match; ranked by the BM25
  /// score of the constituent terms.
  std::vector<SearchHit> SearchPhrase(std::string_view phrase, size_t k,
                                      const Bm25Options& options = {}) const;

  /// True if `doc_id` contains the analyzed terms of `phrase`
  /// consecutively.
  bool ContainsPhrase(std::string_view phrase, int64_t doc_id) const;

  /// Like Search but only documents in `allowed` score (pre-filtered
  /// hybrid execution). `allowed` may be large; lookup is O(1).
  std::vector<SearchHit> SearchFiltered(
      std::string_view query, size_t k,
      const std::unordered_set<int64_t>& allowed,
      const Bm25Options& options = {}) const;

  /// Predicate form of SearchFiltered: only documents for which
  /// `allowed(id)` returns true score. Lets callers test membership
  /// against whatever structure they already hold (e.g. a filter
  /// bitmap) without materializing a set.
  std::vector<SearchHit> SearchFiltered(
      std::string_view query, size_t k,
      const std::function<bool(int64_t)>& allowed,
      const Bm25Options& options = {}) const;

  /// BM25 score of one specific document for `query` (0 when no term
  /// matches). Used by fused executors that already have a candidate.
  double ScoreDocument(std::string_view query, int64_t doc_id,
                       const Bm25Options& options = {}) const;

  /// Memory footprint estimate (resource accounting).
  size_t MemoryBytes() const;

 private:
  double Idf(size_t doc_freq) const;
  void AccumulateScores(
      const std::vector<std::string>& terms, const Bm25Options& options,
      const std::function<bool(int64_t)>& allowed,
      std::unordered_map<int64_t, double>* scores,
      std::unordered_map<int64_t, uint32_t>* matched_terms = nullptr) const;
  /// Docs where `terms` occur consecutively, via position intersection.
  std::vector<int64_t> PhraseCandidates(
      const std::vector<std::string>& terms) const;

  AnalyzerOptions analyzer_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<int64_t, uint32_t> doc_lengths_;
  uint64_t total_length_ = 0;
};

}  // namespace agora

#endif  // AGORA_FTS_INVERTED_INDEX_H_
