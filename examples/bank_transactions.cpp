// MVCC example: concurrent bank transfers under snapshot isolation —
// conflicting writers abort and retry, readers never see torn balances,
// and the total is conserved.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "txn/mvcc_store.h"

int main() {
  using namespace agora;
  MvccStore store;
  constexpr int kAccounts = 32;
  constexpr int64_t kInitial = 100;
  for (int a = 0; a < kAccounts; ++a) {
    (void)store.Put("acct" + std::to_string(a), std::to_string(kInitial));
  }

  std::atomic<int> retries{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&store, &retries, t]() {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < 1000; ++i) {
        int from = static_cast<int>(rng.Uniform(0, kAccounts - 1));
        int to = static_cast<int>(rng.Uniform(0, kAccounts - 1));
        if (from == to) continue;
        // Retry loop: snapshot isolation aborts on write-write conflict.
        while (true) {
          Transaction txn = store.Begin();
          auto fv = txn.Get("acct" + std::to_string(from));
          auto tv = txn.Get("acct" + std::to_string(to));
          int64_t amount = rng.Uniform(1, 5);
          txn.Put("acct" + std::to_string(from),
                  std::to_string(std::stoll(*fv) - amount));
          txn.Put("acct" + std::to_string(to),
                  std::to_string(std::stoll(*tv) + amount));
          if (txn.Commit().ok()) break;
          retries.fetch_add(1);
        }
      }
    });
  }

  // A reader thread repeatedly audits the books against its snapshot.
  std::atomic<bool> stop{false};
  std::atomic<int> audit_failures{0};
  std::thread auditor([&]() {
    while (!stop.load()) {
      Transaction txn = store.Begin();
      int64_t total = 0;
      for (int a = 0; a < kAccounts; ++a) {
        auto v = txn.Get("acct" + std::to_string(a));
        total += std::stoll(*v);
      }
      if (total != kAccounts * kInitial) audit_failures.fetch_add(1);
      (void)txn.Commit();
    }
  });

  for (auto& w : workers) w.join();
  stop.store(true);
  auditor.join();

  int64_t total = 0;
  for (int a = 0; a < kAccounts; ++a) {
    total += std::stoll(*store.Get("acct" + std::to_string(a)));
  }
  std::printf("final total: %lld (expected %lld)\n",
              static_cast<long long>(total),
              static_cast<long long>(kAccounts * kInitial));
  std::printf("commits: %llu, aborts/retries: %llu, snapshot audits that "
              "saw a torn total: %d\n",
              static_cast<unsigned long long>(store.commits()),
              static_cast<unsigned long long>(store.aborts()),
              audit_failures.load());
  store.GarbageCollect();
  std::printf("versions after GC: %zu (one per account)\n",
              store.num_versions());
  return total == kAccounts * kInitial && audit_failures.load() == 0 ? 0 : 1;
}
