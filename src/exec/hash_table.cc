#include "exec/hash_table.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace agora {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void BloomFilter::Build(const uint64_t* hashes, const uint8_t* valid,
                        size_t n) {
  words_.clear();
  word_mask_ = 0;
  size_t count = 0;
  for (size_t r = 0; r < n; ++r) count += valid[r];
  if (count == 0) return;
  // ~16 bits per key => count/4 64-bit words, rounded up to a power of two.
  size_t words = NextPow2(std::max<size_t>(1, (count + 3) / 4));
  words_.assign(words, 0);
  word_mask_ = words - 1;
  for (size_t r = 0; r < n; ++r) {
    if (valid[r] == 0) continue;
    uint64_t h = hashes[r];
    words_[(h >> 32) & word_mask_] |= BitMask(h);
  }
}

Status JoinHashTable::Build(const uint64_t* hashes, const uint8_t* valid,
                            size_t rows, size_t num_partitions,
                            ThreadPool* pool) {
  AGORA_CHECK(num_partitions >= 1);
  arena_.Reset();
  partitions_.assign(num_partitions, Partition{});
  entries_ = 0;
  slot_count_ = 0;
  next_ = rows > 0 ? arena_.AllocateZeroedArray<uint32_t>(rows) : nullptr;

  // Histogram pass: partition populations size the slot directories.
  for (size_t r = 0; r < rows; ++r) {
    if (valid[r] != 0) partitions_[hashes[r] % num_partitions].count++;
  }
  for (Partition& part : partitions_) {
    if (part.count == 0) continue;
    size_t slots = NextPow2(std::max<size_t>(16, part.count * 2));
    part.slots = arena_.AllocateZeroedArray<Slot>(slots);
    part.mask = slots - 1;
    entries_ += static_cast<int64_t>(part.count);
    slot_count_ += static_cast<int64_t>(slots);
  }

  bloom_.Build(hashes, valid, rows);
  // Arena blocks (next + slot directories) charge themselves; the bloom
  // words and the partition directory are accounted here.
  charge_.Update(bloom_.word_count() * sizeof(uint64_t) +
                 partitions_.capacity() * sizeof(Partition));

  // Fill pass: partition p is written only by task p, so the parallel
  // fills need no locks and produce the exact serial layout.
  if (num_partitions == 1 || pool == nullptr) {
    for (size_t p = 0; p < num_partitions; ++p) {
      FillPartition(p, hashes, valid, rows);
    }
    return Status::OK();
  }
  TaskGroup group(pool);
  for (size_t p = 0; p < num_partitions; ++p) {
    group.Spawn([this, p, hashes, valid, rows]() -> Status {
      FillPartition(p, hashes, valid, rows);
      return Status::OK();
    });
  }
  return group.Wait();
}

void JoinHashTable::FillPartition(size_t p, const uint64_t* hashes,
                                  const uint8_t* valid, size_t rows) {
  Partition& part = partitions_[p];
  if (part.slots == nullptr) return;
  const size_t num_partitions = partitions_.size();
  // Descending row order: each insert pushes to the chain head, so the
  // finished chains run in ascending row order (smallest row id first) —
  // the iteration order probers must observe for deterministic output.
  for (size_t r = rows; r-- > 0;) {
    uint64_t h = hashes[r];
    if (valid[r] == 0 || h % num_partitions != p) continue;
    uint64_t pos = (h >> 16) & part.mask;
    for (;;) {
      Slot& s = part.slots[pos];
      if (s.head == 0) {
        s.hash = h;
        s.head = static_cast<uint32_t>(r) + 1;
        break;  // next_[r] is already 0 (chain end)
      }
      if (s.hash == h) {
        next_[r] = s.head;
        s.head = static_cast<uint32_t>(r) + 1;
        break;
      }
      pos = (pos + 1) & part.mask;
    }
  }
}

void GroupKeyTable::FindOrCreate(const std::vector<ColumnVector>& key_cols,
                                 const uint64_t* hashes, size_t n,
                                 uint32_t* gids, uint8_t* created,
                                 HashTableStats* stats) {
  if (slots_.empty()) {
    slots_.assign(kInitialSlots, Slot{});
    mask_ = kInitialSlots - 1;
  }
  if (keys_.empty() && !key_cols.empty()) {
    keys_.reserve(key_cols.size());
    for (const ColumnVector& col : key_cols) keys_.emplace_back(col.type());
  }
  pend_rows_.clear();
  pend_gids_.clear();
  stats->lookups += static_cast<int64_t>(n);

  // Pass 1: probe every row. An empty slot creates the group immediately
  // (no verification needed — the probe walked past every same-hash
  // candidate); a hash-matching slot defers to the batch verifier.
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = hashes[i];
    uint64_t pos = (h >> 16) & mask_;
    for (;;) {
      stats->probe_steps++;
      const Slot& s = slots_[pos];
      if (s.gid1 == 0) {
        gids[i] = CreateGroup(key_cols, i, h);
        created[i] = 1;
        break;
      }
      if (s.hash == h) {
        pend_rows_.push_back(static_cast<uint32_t>(i));
        pend_gids_.push_back(s.gid1 - 1);
        break;
      }
      pos = (pos + 1) & mask_;
    }
  }

  charge_.Update(slots_.capacity() * sizeof(Slot) +
                 group_hashes_.capacity() * sizeof(uint64_t));

  // Pass 2: verify all deferred candidates column-at-a-time against the
  // stored keys. With zero key columns every candidate trivially matches
  // (the scalar-aggregate single group).
  size_t m = pend_rows_.size();
  if (m == 0) return;
  pend_equal_.assign(m, 1);
  for (size_t k = 0; k < key_cols.size(); ++k) {
    key_cols[k].BatchEqualRows(pend_rows_.data(), keys_[k],
                               pend_gids_.data(), m,
                               /*bitwise_doubles=*/true, pend_equal_.data());
  }

  // Pass 3: resolve. Verification failures are genuine 64-bit hash
  // collisions — vanishingly rare — and re-probe row-at-a-time.
  for (size_t j = 0; j < m; ++j) {
    uint32_t i = pend_rows_[j];
    if (pend_equal_[j] != 0) {
      gids[i] = pend_gids_[j];
      created[i] = 0;
    } else {
      gids[i] = SlowFindOrCreate(key_cols, i, hashes[i], &created[i], stats);
    }
  }
  charge_.Update(slots_.capacity() * sizeof(Slot) +
                 group_hashes_.capacity() * sizeof(uint64_t));
}

uint32_t GroupKeyTable::CreateGroup(const std::vector<ColumnVector>& key_cols,
                                    size_t row, uint64_t h) {
  if ((group_hashes_.size() + 1) * kLoadDen > slots_.size() * kLoadNum) {
    Resize(slots_.size() * 2);
  }
  uint32_t gid = static_cast<uint32_t>(group_hashes_.size());
  group_hashes_.push_back(h);
  for (size_t k = 0; k < key_cols.size(); ++k) {
    keys_[k].AppendFrom(key_cols[k], row);
  }
  InsertSlot(h, gid + 1);
  return gid;
}

void GroupKeyTable::InsertSlot(uint64_t h, uint32_t gid1) {
  uint64_t pos = (h >> 16) & mask_;
  // Claim the first empty slot: distinct groups may share a hash, so
  // hash-equal occupied slots are skipped, never merged.
  while (slots_[pos].gid1 != 0) pos = (pos + 1) & mask_;
  slots_[pos] = Slot{h, gid1};
}

void GroupKeyTable::Resize(size_t new_slots) {
  slots_.assign(new_slots, Slot{});
  mask_ = new_slots - 1;
  resizes_++;
  for (size_t g = 0; g < group_hashes_.size(); ++g) {
    InsertSlot(group_hashes_[g], static_cast<uint32_t>(g) + 1);
  }
}

uint32_t GroupKeyTable::SlowFindOrCreate(
    const std::vector<ColumnVector>& key_cols, size_t row, uint64_t h,
    uint8_t* created, HashTableStats* stats) {
  uint64_t pos = (h >> 16) & mask_;
  for (;;) {
    stats->probe_steps++;
    const Slot& s = slots_[pos];
    if (s.gid1 == 0) {
      *created = 1;
      return CreateGroup(key_cols, row, h);
    }
    if (s.hash == h && RowMatchesGroup(key_cols, row, s.gid1 - 1)) {
      *created = 0;
      return s.gid1 - 1;
    }
    pos = (pos + 1) & mask_;
  }
}

bool GroupKeyTable::RowMatchesGroup(const std::vector<ColumnVector>& key_cols,
                                    size_t row, uint32_t gid) const {
  uint32_t r32 = static_cast<uint32_t>(row);
  for (size_t k = 0; k < key_cols.size(); ++k) {
    uint8_t equal = 1;
    key_cols[k].BatchEqualRows(&r32, keys_[k], &gid, 1,
                               /*bitwise_doubles=*/true, &equal);
    if (equal == 0) return false;
  }
  return true;
}

}  // namespace agora
