// Tests for the HNSW graph index: construction invariants, recall vs the
// exact baseline, and the ef knob.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vec/hnsw_index.h"

namespace agora {
namespace {

std::vector<Vecf> MakeClusteredData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vecf> centers;
  for (int c = 0; c < 8; ++c) {
    Vecf center(dim);
    for (float& x : center) x = static_cast<float>(rng.Gaussian()) * 10.0f;
    centers.push_back(std::move(center));
  }
  std::vector<Vecf> data;
  for (size_t i = 0; i < n; ++i) {
    Vecf v(dim);
    const Vecf& center = centers[i % centers.size()];
    for (size_t d = 0; d < dim; ++d) {
      v[d] = center[d] + static_cast<float>(rng.Gaussian());
    }
    data.push_back(std::move(v));
  }
  return data;
}

TEST(HnswTest, EmptyAndSingle) {
  HnswIndex index(4, {});
  auto empty = index.Search({1, 2, 3, 4}, 5);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  ASSERT_TRUE(index.Add(42, {1, 2, 3, 4}).ok());
  auto one = index.Search({1, 2, 3, 4}, 5);
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].id, 42);
  EXPECT_FLOAT_EQ((*one)[0].distance, 0.0f);
}

TEST(HnswTest, DimensionMismatchRejected) {
  HnswIndex index(4, {});
  EXPECT_EQ(index.Add(0, {1, 2}).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(index.Add(0, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(index.Search({1, 2}, 1).ok());
}

TEST(HnswTest, FindsExactMatchAmongMany) {
  auto data = MakeClusteredData(2000, 8, 1);
  HnswIndex index(8, {});
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data[i]).ok());
  }
  // Querying with a stored vector must return it first.
  for (size_t probe : {0u, 500u, 1999u}) {
    auto result = index.Search(data[probe], 1);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 1u);
    EXPECT_EQ((*result)[0].id, static_cast<int64_t>(probe));
  }
}

TEST(HnswTest, HighRecallVsExact) {
  auto data = MakeClusteredData(3000, 16, 2);
  HnswIndex index(16, {});
  FlatIndex exact(16);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data[i]).ok());
    ASSERT_TRUE(exact.Add(static_cast<int64_t>(i), data[i]).ok());
  }
  Rng rng(3);
  double recall = 0;
  const int kQueries = 25;
  for (int q = 0; q < kQueries; ++q) {
    Vecf query = data[static_cast<size_t>(rng.Uniform(0, 2999))];
    for (float& x : query) x += static_cast<float>(rng.Gaussian()) * 0.2f;
    auto truth = exact.Search(query, 10);
    auto approx = index.Search(query, 10);
    ASSERT_TRUE(truth.ok() && approx.ok());
    recall += RecallAtK(*truth, *approx);
  }
  recall /= kQueries;
  EXPECT_GT(recall, 0.9);
}

TEST(HnswTest, RecallGrowsWithEf) {
  auto data = MakeClusteredData(3000, 16, 4);
  HnswOptions options;
  options.ef_construction = 60;
  HnswIndex index(16, options);
  FlatIndex exact(16);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data[i]).ok());
    ASSERT_TRUE(exact.Add(static_cast<int64_t>(i), data[i]).ok());
  }
  Rng rng(5);
  double recall_small = 0, recall_large = 0;
  const int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    Vecf query(16);
    size_t base = static_cast<size_t>(rng.Uniform(0, 2999));
    for (size_t d = 0; d < 16; ++d) {
      query[d] = data[base][d] + static_cast<float>(rng.Gaussian()) * 0.3f;
    }
    auto truth = exact.Search(query, 10);
    auto small = index.SearchWithEf(query, 10, 10);
    auto large = index.SearchWithEf(query, 10, 200);
    ASSERT_TRUE(truth.ok() && small.ok() && large.ok());
    recall_small += RecallAtK(*truth, *small);
    recall_large += RecallAtK(*truth, *large);
  }
  EXPECT_GE(recall_large, recall_small);
  EXPECT_GT(recall_large / kQueries, 0.95);
}

TEST(HnswTest, ResultsSortedByDistance) {
  auto data = MakeClusteredData(500, 8, 6);
  HnswIndex index(8, {});
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), data[i]).ok());
  }
  auto result = index.Search(data[7], 20);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE((*result)[i - 1].distance, (*result)[i].distance);
  }
}

TEST(HnswTest, DeterministicForFixedSeedAndOrder) {
  auto data = MakeClusteredData(800, 8, 8);
  HnswOptions options;
  options.seed = 123;
  HnswIndex a(8, options), b(8, options);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(a.Add(static_cast<int64_t>(i), data[i]).ok());
    ASSERT_TRUE(b.Add(static_cast<int64_t>(i), data[i]).ok());
  }
  auto ra = a.Search(data[13], 10);
  auto rb = b.Search(data[13], 10);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra->size(), rb->size());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i].id, (*rb)[i].id);
  }
}

TEST(HnswTest, CosineMetricSupported) {
  HnswOptions options;
  options.metric = Metric::kCosine;
  HnswIndex index(3, options);
  ASSERT_TRUE(index.Add(0, {1, 0, 0}).ok());
  ASSERT_TRUE(index.Add(1, {0, 1, 0}).ok());
  ASSERT_TRUE(index.Add(2, {0.9f, 0.1f, 0}).ok());
  auto result = index.Search({1, 0.05f, 0}, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].id, 0);
  EXPECT_EQ((*result)[1].id, 2);
}

}  // namespace
}  // namespace agora
