#include "exec/union_op.h"

namespace agora {

PhysicalUnion::PhysicalUnion(std::vector<PhysicalOpPtr> children,
                             ExecContext* context)
    : PhysicalOperator(children[0]->schema(), context),
      children_(std::move(children)) {}

Status PhysicalUnion::OpenImpl() {
  current_ = 0;
  current_done_ = false;
  for (const PhysicalOpPtr& child : children_) {
    AGORA_RETURN_IF_ERROR(child->Open());
  }
  return Status::OK();
}

Status PhysicalUnion::NextImpl(Chunk* chunk, bool* done) {
  while (current_ < children_.size()) {
    if (current_done_) {
      ++current_;
      current_done_ = false;
      continue;
    }
    Chunk out;
    AGORA_RETURN_IF_ERROR(children_[current_]->Next(&out, &current_done_));
    if (out.num_rows() == 0) continue;
    *chunk = std::move(out);
    *done = current_done_ && current_ + 1 >= children_.size();
    return Status::OK();
  }
  *chunk = Chunk(schema_);
  *done = true;
  return Status::OK();
}

}  // namespace agora
