#include <algorithm>
#include <cmath>

#include "optimizer/optimizer.h"

namespace agora {
namespace optimizer_internal {

namespace {

// Unitless row-touch weights. Calibrated so the crossover matches the
// measured behavior of the hybrid engine on the synthetic E3 workload:
// a pre-filter pass costs one cheap predicate evaluation per row plus an
// exact distance + BM25 probe per survivor; a post-filter attempt costs
// one ANN probe sweep plus candidate re-filtering, and repeats while the
// over-fetch loop under-fills k.
constexpr double kFilterEvalCost = 0.25;   // predicate eval, per row
constexpr double kExactProbeCost = 2.5;    // distance + BM25, per survivor
constexpr double kAnnDistanceCost = 2.0;   // distance, per scanned vector
constexpr double kCandidateCost = 1.0;     // fetch/filter, per candidate

/// Fraction of the table one ANN probe sweep scans.
double ProbeFraction(const LogicalVectorTopK* vec) {
  if (vec == nullptr) return 0.0;  // keyword-only: no distance sweeps
  if (vec->ivf_index() != nullptr) {
    const IvfOptions& opt = vec->ivf_index()->options();
    if (opt.nlist > 0) {
      return static_cast<double>(opt.nprobe) /
             static_cast<double>(opt.nlist);
    }
  }
  if (vec->hnsw_index() != nullptr) return 0.05;  // ~logarithmic probes
  return 1.0;  // flat fallback scans everything
}

double CostPreFilter(double rows, double selectivity) {
  return kFilterEvalCost * rows + selectivity * rows * kExactProbeCost;
}

double CostPostFilter(double rows, double selectivity, size_t k,
                      const HybridExecOptions& exec, double probe_frac) {
  // The over-fetch loop starts at k*overfetch candidates and doubles until
  // ~k/selectivity of them survive the filter (capped at max_retries).
  double first_fetch =
      static_cast<double>(k) * static_cast<double>(std::max<size_t>(
                                   exec.overfetch, 1));
  double needed = static_cast<double>(k) / std::max(selectivity, 1e-8);
  double doublings = std::ceil(std::log2(std::max(needed / first_fetch,
                                                  1.0)));
  double attempts =
      1.0 + std::min(static_cast<double>(exec.max_retries),
                     std::max(doublings, 0.0));
  double per_attempt =
      rows * probe_frac * kAnnDistanceCost + first_fetch * kCandidateCost;
  return attempts * per_attempt;
}

void ResolveOne(LogicalScoreFusion* fusion, const OptimizerOptions& options,
                CardinalityEstimator* estimator) {
  std::shared_ptr<const TableStats> stats_snapshot =
      estimator->stats_cache()->Get(*fusion->table());
  const TableStats& stats = *stats_snapshot;
  double rows = static_cast<double>(std::max<int64_t>(stats.row_count, 1));
  double selectivity = 1.0;
  if (fusion->filter() != nullptr) {
    selectivity = estimator->EstimateSelectivity(
        fusion->filter(), [&stats](size_t column) -> const ColumnStats* {
          return column < stats.columns.size() ? &stats.columns[column]
                                               : nullptr;
        });
  }
  LogicalVectorTopK* vec = fusion->vector_top_k();
  double cost_pre = CostPreFilter(rows, selectivity);
  double cost_post = CostPostFilter(rows, selectivity, fusion->k(),
                                    fusion->exec_options(),
                                    ProbeFraction(vec));
  fusion->SetCostEstimates(selectivity, cost_pre, cost_post);

  HybridStrategy strategy = fusion->strategy();
  if (options.hybrid_force_strategy != HybridStrategy::kAuto) {
    strategy = options.hybrid_force_strategy;
  }
  if (strategy == HybridStrategy::kAuto) {
    if (fusion->filter() == nullptr) {
      // Nothing to pre-filter: a single full-depth index pass wins.
      strategy = HybridStrategy::kPostFilter;
    } else if (options.enable_hybrid_cost_strategy) {
      strategy = cost_pre <= cost_post ? HybridStrategy::kPreFilter
                                       : HybridStrategy::kPostFilter;
    } else {
      // Legacy heuristic: fixed selectivity threshold.
      strategy =
          selectivity <=
                  fusion->exec_options().prefilter_selectivity_threshold
              ? HybridStrategy::kPreFilter
              : HybridStrategy::kPostFilter;
    }
  }
  fusion->set_strategy(strategy);

  if (vec != nullptr) {
    // Pre-filtered plans search the survivor set exactly; post-filtered
    // plans want the cheapest ANN structure available.
    VectorIndexChoice choice = VectorIndexChoice::kFlat;
    if (strategy == HybridStrategy::kPostFilter) {
      if (vec->ivf_index() != nullptr) {
        choice = VectorIndexChoice::kIvf;
      } else if (vec->hnsw_index() != nullptr) {
        choice = VectorIndexChoice::kHnsw;
      }
    }
    vec->set_index_choice(choice);
  }
}

}  // namespace

void ResolveHybridStrategies(const LogicalOpPtr& node,
                             const OptimizerOptions& options,
                             CardinalityEstimator* estimator) {
  if (node->kind() == LogicalOpKind::kScoreFusion) {
    ResolveOne(static_cast<LogicalScoreFusion*>(node.get()), options,
               estimator);
  }
  for (const LogicalOpPtr& child : node->children()) {
    ResolveHybridStrategies(child, options, estimator);
  }
}

}  // namespace optimizer_internal
}  // namespace agora
