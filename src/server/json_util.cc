#include "server/json_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace agora {

namespace {

/// Recursive-descent parser over a string_view with an explicit cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    AGORA_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::ParseError("invalid JSON at byte " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeLiteral("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Fail(std::string("unexpected character '") + c + "'");
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      AGORA_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      AGORA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_items.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      AGORA_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    Consume('"');
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point; surrogate halves (which
          // would need pairing) degrade to '?' rather than mojibake.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            out->push_back('?');
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token == "-") {
      return Fail("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_items) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(&out, s);
  return out;
}

}  // namespace agora
