#ifndef AGORA_EXPR_EXPR_H_
#define AGORA_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/chunk.h"
#include "types/schema.h"
#include "types/value.h"

namespace agora {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kColumnRef,
  kLiteral,
  kComparison,
  kArithmetic,
  kLogical,
  kNot,
  kIsNull,
  kLike,
  kInList,
  kCast,
  kFunction,
  kCase,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class LogicalOp { kAnd, kOr };

std::string_view CompareOpToString(CompareOp op);
std::string_view ArithOpToString(ArithOp op);

/// Flips the operand order: a < b  <=>  b > a.
CompareOp SwapCompareOp(CompareOp op);
/// Logical negation: a < b  <=>  !(a >= b).
CompareOp NegateCompareOp(CompareOp op);

/// Counters filled in by the vectorized evaluator; the caller (an
/// operator) folds them into its ExecStats slot. Lives here because the
/// expr layer must not depend on exec.
struct ExprCounters {
  /// Sum of batch sizes processed by non-leaf expression kernels.
  int64_t rows_evaluated = 0;
  /// Kernel invocations that ran under a narrowed selection vector
  /// (fewer rows touched than the chunk holds).
  int64_t sel_hits = 0;
};

/// Input to vectorized evaluation: the chunk, an optional selection
/// vector naming the live rows (ascending chunk-row indexes), and
/// optional counters. With a selection of k rows, EvalBatch produces a
/// *dense* k-row output — result row i corresponds to chunk row sel[i].
/// Without one, all chunk rows are evaluated in order.
struct EvalContext {
  const Chunk* chunk = nullptr;
  const std::vector<uint32_t>* sel = nullptr;
  ExprCounters* counters = nullptr;

  /// Number of rows this evaluation produces.
  size_t NumRows() const { return sel ? sel->size() : chunk->num_rows(); }
};

/// A set of live rows of one chunk, as refined by filter predicates.
/// `all == true` means every row (rows is ignored); otherwise `rows`
/// holds the surviving chunk-row indexes in ascending order.
struct Selection {
  std::vector<uint32_t> rows;
  bool all = true;

  size_t Count(size_t chunk_rows) const {
    return all ? chunk_rows : rows.size();
  }
};

/// Base class for bound (executable) expressions. Expressions are
/// immutable after construction and shared via ExprPtr; Clone produces a
/// deep copy for rewrites that change children.
///
/// Evaluation is vectorized: `EvalBatch` computes the expression for the
/// rows named by the EvalContext and returns a column of results, which
/// may use the constant vector form. SQL three-valued logic is honored
/// (NULL propagates through comparisons/arithmetic; AND/OR use Kleene
/// semantics).
class Expr {
 public:
  explicit Expr(ExprKind kind, TypeId result_type)
      : kind_(kind), result_type_(result_type) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  TypeId result_type() const { return result_type_; }

  /// Vectorized evaluation of the context's live rows into `out`
  /// (freshly sized, possibly constant-form or buffer-sharing).
  virtual Status EvalBatch(const EvalContext& ctx,
                           ColumnVector* out) const = 0;

  /// Evaluates every row of `chunk` into a flat `out` vector. Wrapper
  /// over EvalBatch for callers that need plain dense output.
  Status Evaluate(const Chunk& chunk, ColumnVector* out) const;

  /// SQL-ish rendering for plans and diagnostics.
  virtual std::string ToString() const = 0;

  virtual ExprPtr Clone() const = 0;

  /// Direct children (empty for leaves).
  virtual std::vector<ExprPtr> Children() const { return {}; }

  /// Appends every column index referenced in this subtree to `out`.
  void CollectColumnRefs(std::vector<size_t>* out) const;

  /// True if the subtree references no columns (evaluable at plan time).
  bool IsConstant() const;

  /// Evaluates a constant expression to a single value.
  Result<Value> EvaluateScalar() const;

 protected:
  ExprKind kind_;
  TypeId result_type_;
};

/// Narrows `sel` to the rows of `chunk` where `pred` evaluates to TRUE
/// (filter semantics: NULL rejects). AND conjuncts short-circuit by
/// iterative refinement — each conjunct evaluates only rows its
/// predecessors kept; OR takes the union of per-child acceptances,
/// evaluating each child only over rows no earlier child accepted.
/// `counters` may be null.
Status RefineSelection(const Expr& pred, const Chunk& chunk, Selection* sel,
                       ExprCounters* counters);

/// Reference to column `index` of the operator's input schema.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(size_t index, TypeId type, std::string name)
      : Expr(ExprKind::kColumnRef, type),
        index_(index),
        name_(std::move(name)) {}

  size_t index() const { return index_; }
  const std::string& name() const { return name_; }
  void set_index(size_t index) { index_ = index; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<ColumnRefExpr>(index_, result_type_, name_);
  }

 private:
  size_t index_;
  std::string name_;
};

/// A constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral, value.type()), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<LiteralExpr>(value_);
  }

 private:
  Value value_;
};

/// Binary comparison producing BOOLEAN (NULL if either side is NULL).
class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison, TypeId::kBool),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<ComparisonExpr>(op_, left_->Clone(),
                                            right_->Clone());
  }
  std::vector<ExprPtr> Children() const override { return {left_, right_}; }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Binary arithmetic. Result type is the common numeric type of the
/// operands; division by zero yields NULL (SQL-permissive mode).
class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right, TypeId result_type)
      : Expr(ExprKind::kArithmetic, result_type),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<ArithmeticExpr>(op_, left_->Clone(),
                                            right_->Clone(), result_type_);
  }
  std::vector<ExprPtr> Children() const override { return {left_, right_}; }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// N-ary AND/OR with Kleene three-valued semantics.
class LogicalExpr : public Expr {
 public:
  LogicalExpr(LogicalOp op, std::vector<ExprPtr> children)
      : Expr(ExprKind::kLogical, TypeId::kBool),
        op_(op),
        children_(std::move(children)) {}

  LogicalOp op() const { return op_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;
  std::vector<ExprPtr> Children() const override { return children_; }

 private:
  LogicalOp op_;
  std::vector<ExprPtr> children_;
};

/// NOT child (NULL stays NULL).
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child)
      : Expr(ExprKind::kNot, TypeId::kBool), child_(std::move(child)) {}

  const ExprPtr& child() const { return child_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<NotExpr>(child_->Clone());
  }
  std::vector<ExprPtr> Children() const override { return {child_}; }

 private:
  ExprPtr child_;
};

/// child IS [NOT] NULL — never yields NULL itself.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated)
      : Expr(ExprKind::kIsNull, TypeId::kBool),
        child_(std::move(child)),
        negated_(negated) {}

  const ExprPtr& child() const { return child_; }
  bool negated() const { return negated_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<IsNullExpr>(child_->Clone(), negated_);
  }
  std::vector<ExprPtr> Children() const override { return {child_}; }

 private:
  ExprPtr child_;
  bool negated_;
};

/// child LIKE 'pattern' ('%' and '_' wildcards).
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr child, std::string pattern, bool negated)
      : Expr(ExprKind::kLike, TypeId::kBool),
        child_(std::move(child)),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  const ExprPtr& child() const { return child_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<LikeExpr>(child_->Clone(), pattern_, negated_);
  }
  std::vector<ExprPtr> Children() const override { return {child_}; }

 private:
  ExprPtr child_;
  std::string pattern_;
  bool negated_;
};

/// child IN (v1, v2, ...) over literal values.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr child, std::vector<Value> values, bool negated)
      : Expr(ExprKind::kInList, TypeId::kBool),
        child_(std::move(child)),
        values_(std::move(values)),
        negated_(negated) {}

  const ExprPtr& child() const { return child_; }
  const std::vector<Value>& values() const { return values_; }
  bool negated() const { return negated_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<InListExpr>(child_->Clone(), values_, negated_);
  }
  std::vector<ExprPtr> Children() const override { return {child_}; }

 private:
  ExprPtr child_;
  std::vector<Value> values_;
  bool negated_;
};

/// CAST(child AS type).
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr child, TypeId target)
      : Expr(ExprKind::kCast, target), child_(std::move(child)) {}

  const ExprPtr& child() const { return child_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<CastExpr>(child_->Clone(), result_type_);
  }
  std::vector<ExprPtr> Children() const override { return {child_}; }

 private:
  ExprPtr child_;
};

/// Built-in scalar functions.
enum class ScalarFunc {
  kAbs,     // numeric -> numeric
  kLower,   // string -> string
  kUpper,   // string -> string
  kLength,  // string -> int64
  kYear,    // date -> int64
  kMonth,   // date -> int64
  kSqrt,    // numeric -> double
  kFloor,   // numeric -> double
  kCeil,    // numeric -> double
};

/// Resolves a function name ("ABS", "lower", ...) to its enum; returns
/// false if unknown.
bool LookupScalarFunc(const std::string& name, ScalarFunc* out);
/// Result type of `func` applied to an argument of `arg_type`; kInvalid on
/// a type mismatch.
TypeId ScalarFuncResultType(ScalarFunc func, TypeId arg_type);
std::string_view ScalarFuncToString(ScalarFunc func);

/// Unary scalar function application.
class FunctionExpr : public Expr {
 public:
  FunctionExpr(ScalarFunc func, ExprPtr arg, TypeId result_type)
      : Expr(ExprKind::kFunction, result_type),
        func_(func),
        arg_(std::move(arg)) {}

  ScalarFunc func() const { return func_; }
  const ExprPtr& arg() const { return arg_; }

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override {
    return std::make_shared<FunctionExpr>(func_, arg_->Clone(), result_type_);
  }
  std::vector<ExprPtr> Children() const override { return {arg_}; }

 private:
  ScalarFunc func_;
  ExprPtr arg_;
};

/// CASE WHEN c1 THEN r1 [WHEN ...] [ELSE e] END.
class CaseExpr : public Expr {
 public:
  CaseExpr(std::vector<ExprPtr> conditions, std::vector<ExprPtr> results,
           ExprPtr else_result, TypeId result_type)
      : Expr(ExprKind::kCase, result_type),
        conditions_(std::move(conditions)),
        results_(std::move(results)),
        else_result_(std::move(else_result)) {}

  Status EvalBatch(const EvalContext& ctx, ColumnVector* out) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;
  std::vector<ExprPtr> Children() const override;

  const std::vector<ExprPtr>& conditions() const { return conditions_; }
  const std::vector<ExprPtr>& results() const { return results_; }
  const ExprPtr& else_result() const { return else_result_; }

 private:
  std::vector<ExprPtr> conditions_;
  std::vector<ExprPtr> results_;
  ExprPtr else_result_;  // may be null (implicit ELSE NULL)
};

// -- Convenience builders (tests, hand-built plans) ----------------------

ExprPtr MakeColumnRef(size_t index, TypeId type, std::string name = "");
ExprPtr MakeLiteral(Value v);
ExprPtr MakeCompare(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeAnd(ExprPtr l, ExprPtr r);
ExprPtr MakeOr(ExprPtr l, ExprPtr r);
ExprPtr MakeNot(ExprPtr e);

}  // namespace agora

#endif  // AGORA_EXPR_EXPR_H_
