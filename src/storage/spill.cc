#include "storage/spill.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace agora {
namespace {

constexpr uint32_t kChunkMagic = 0x41435055;  // "APCU"
constexpr uint32_t kBlobMagic = 0x41424C42;   // "ABLB"

std::string ResolveSpillDir(std::string dir) {
  if (!dir.empty()) return dir;
  if (const char* env = std::getenv("AGORA_SPILL_DIR")) {
    if (env[0] != '\0') return env;
  }
  if (const char* env = std::getenv("TMPDIR")) {
    if (env[0] != '\0') return env;
  }
  return "/tmp";
}

}  // namespace

SpillFile::SpillFile(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  if (!path_.empty()) std::remove(path_.c_str());
}

Status SpillFile::WriteRaw(const void* data, size_t size) {
  if (size == 0) return Status::OK();
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IoError("spill write failed on " + path_);
  }
  bytes_written_ += static_cast<int64_t>(size);
  return Status::OK();
}

Status SpillFile::ReadRaw(void* data, size_t size) {
  if (size == 0) return Status::OK();
  if (std::fread(data, 1, size, file_) != size) {
    return Status::IoError("spill read failed on " + path_ +
                           " (truncated record)");
  }
  bytes_read_ += static_cast<int64_t>(size);
  return Status::OK();
}

Status SpillFile::WriteChunk(const Chunk& chunk) {
  uint32_t magic = kChunkMagic;
  uint32_t ncols = static_cast<uint32_t>(chunk.num_columns());
  uint32_t nrows = static_cast<uint32_t>(chunk.num_rows());
  AGORA_RETURN_IF_ERROR(WriteRaw(&magic, sizeof(magic)));
  AGORA_RETURN_IF_ERROR(WriteRaw(&ncols, sizeof(ncols)));
  AGORA_RETURN_IF_ERROR(WriteRaw(&nrows, sizeof(nrows)));
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    // Copy-flatten so constant columns serialize as their logical rows;
    // flat columns share the payload (no copy).
    ColumnVector col = chunk.column(c);
    col.Flatten();
    uint8_t type = static_cast<uint8_t>(col.type());
    AGORA_RETURN_IF_ERROR(WriteRaw(&type, sizeof(type)));
    AGORA_RETURN_IF_ERROR(WriteRaw(col.validity_data(), nrows));
    switch (col.type()) {
      case TypeId::kBool:
      case TypeId::kInt64:
      case TypeId::kDate:
        AGORA_RETURN_IF_ERROR(
            WriteRaw(col.int64_data(), nrows * sizeof(int64_t)));
        break;
      case TypeId::kDouble:
        AGORA_RETURN_IF_ERROR(
            WriteRaw(col.double_data(), nrows * sizeof(double)));
        break;
      case TypeId::kString: {
        const auto& strings = col.string_data();
        const uint8_t* validity = col.validity_data();
        for (uint32_t r = 0; r < nrows; ++r) {
          uint32_t len =
              validity[r] != 0 ? static_cast<uint32_t>(strings[r].size())
                               : 0;
          AGORA_RETURN_IF_ERROR(WriteRaw(&len, sizeof(len)));
          if (len != 0) {
            AGORA_RETURN_IF_ERROR(WriteRaw(strings[r].data(), len));
          }
        }
        break;
      }
      case TypeId::kInvalid:
        return Status::Internal("cannot spill invalid-typed column");
    }
  }
  return Status::OK();
}

Status SpillFile::WriteBlob(const void* data, size_t size) {
  uint32_t magic = kBlobMagic;
  uint64_t size64 = size;
  AGORA_RETURN_IF_ERROR(WriteRaw(&magic, sizeof(magic)));
  AGORA_RETURN_IF_ERROR(WriteRaw(&size64, sizeof(size64)));
  return WriteRaw(data, size);
}

Status SpillFile::Rewind() {
  if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IoError("spill rewind failed on " + path_);
  }
  return Status::OK();
}

Status SpillFile::ReadChunk(Chunk* out, bool* eof) {
  *out = Chunk();
  *eof = false;
  uint32_t magic = 0;
  if (std::fread(&magic, 1, sizeof(magic), file_) != sizeof(magic)) {
    *eof = true;
    return Status::OK();
  }
  bytes_read_ += sizeof(magic);
  if (magic != kChunkMagic) {
    return Status::Internal("spill stream corrupt: expected chunk record");
  }
  uint32_t ncols = 0, nrows = 0;
  AGORA_RETURN_IF_ERROR(ReadRaw(&ncols, sizeof(ncols)));
  AGORA_RETURN_IF_ERROR(ReadRaw(&nrows, sizeof(nrows)));
  std::vector<uint8_t> validity(nrows);
  for (uint32_t c = 0; c < ncols; ++c) {
    uint8_t type = 0;
    AGORA_RETURN_IF_ERROR(ReadRaw(&type, sizeof(type)));
    TypeId type_id = static_cast<TypeId>(type);
    AGORA_RETURN_IF_ERROR(ReadRaw(validity.data(), nrows));
    ColumnVector col(type_id);
    switch (type_id) {
      case TypeId::kBool:
      case TypeId::kInt64:
      case TypeId::kDate:
        col.ResizeForOverwrite(nrows);
        AGORA_RETURN_IF_ERROR(
            ReadRaw(col.mutable_int64_data(), nrows * sizeof(int64_t)));
        std::memcpy(col.mutable_validity_data(), validity.data(), nrows);
        break;
      case TypeId::kDouble:
        col.ResizeForOverwrite(nrows);
        AGORA_RETURN_IF_ERROR(
            ReadRaw(col.mutable_double_data(), nrows * sizeof(double)));
        std::memcpy(col.mutable_validity_data(), validity.data(), nrows);
        break;
      case TypeId::kString: {
        col.Reserve(nrows);
        std::string value;
        for (uint32_t r = 0; r < nrows; ++r) {
          uint32_t len = 0;
          AGORA_RETURN_IF_ERROR(ReadRaw(&len, sizeof(len)));
          value.resize(len);
          if (len != 0) {
            AGORA_RETURN_IF_ERROR(ReadRaw(value.data(), len));
          }
          if (validity[r] != 0) {
            col.AppendString(value);
          } else {
            col.AppendNull();
          }
        }
        break;
      }
      case TypeId::kInvalid:
        return Status::Internal("spill stream corrupt: invalid column type");
    }
    out->AddColumn(std::move(col));
  }
  if (ncols == 0) out->SetExplicitRowCount(nrows);
  return Status::OK();
}

Status SpillFile::ReadBlob(std::string* out) {
  uint32_t magic = 0;
  AGORA_RETURN_IF_ERROR(ReadRaw(&magic, sizeof(magic)));
  if (magic != kBlobMagic) {
    return Status::Internal("spill stream corrupt: expected blob record");
  }
  uint64_t size = 0;
  AGORA_RETURN_IF_ERROR(ReadRaw(&size, sizeof(size)));
  out->resize(size);
  return ReadRaw(out->data(), size);
}

SpillManager::SpillManager(std::string dir)
    : dir_(ResolveSpillDir(std::move(dir))) {}

SpillManager::~SpillManager() = default;

Result<std::unique_ptr<SpillFile>> SpillManager::Create() {
  MutexLock lock(mu_);
  if (!free_.empty()) {
    std::unique_ptr<SpillFile> file = std::move(free_.back());
    free_.pop_back();
    // Truncate in place; the FILE* stream is reopened on the same path.
    std::FILE* reopened =
        std::freopen(file->path_.c_str(), "wb+", file->file_);
    if (reopened == nullptr) {
      file->file_ = nullptr;  // freopen closed the stream on failure
      return Status::IoError("cannot reopen spill file " + file->path_);
    }
    file->file_ = reopened;
    file->bytes_written_ = 0;
    file->bytes_read_ = 0;
    return file;
  }
  std::string path = dir_ + "/agora_spill_" +
                     std::to_string(static_cast<long>(getpid())) + "_" +
                     std::to_string(next_id_++) + ".tmp";
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IoError("cannot create spill file " + path);
  }
  ++files_created_;
  return std::unique_ptr<SpillFile>(new SpillFile(std::move(path), f));
}

void SpillManager::Recycle(std::unique_ptr<SpillFile> file) {
  if (file == nullptr) return;
  MutexLock lock(mu_);
  free_.push_back(std::move(file));
}

}  // namespace agora
