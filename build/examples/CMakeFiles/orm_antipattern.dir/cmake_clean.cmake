file(REMOVE_RECURSE
  "CMakeFiles/orm_antipattern.dir/orm_antipattern.cpp.o"
  "CMakeFiles/orm_antipattern.dir/orm_antipattern.cpp.o.d"
  "orm_antipattern"
  "orm_antipattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orm_antipattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
