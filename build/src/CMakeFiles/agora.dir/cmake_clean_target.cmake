file(REMOVE_RECURSE
  "libagora.a"
)
