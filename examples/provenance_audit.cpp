// Provenance example: compute an aggregate report with lineage capture,
// then audit one suspicious output by tracing it back to the exact base
// rows that produced it.

#include <cstdio>

#include "lineage/lineage.h"
#include "storage/table.h"

int main() {
  using namespace agora;

  // A tiny "content moderation" scenario: sources post items; we report
  // items per source and want to audit where a count came from.
  auto sources = std::make_shared<Table>(
      "sources", Schema({{"id", TypeId::kInt64, false},
                         {"name", TypeId::kString, false},
                         {"trusted", TypeId::kBool, false}}));
  (void)sources->AppendRow({Value::Int64(1), Value::String("wire_service"),
                            Value::Bool(true)});
  (void)sources->AppendRow({Value::Int64(2), Value::String("blog_farm"),
                            Value::Bool(false)});
  (void)sources->AppendRow({Value::Int64(3), Value::String("press_office"),
                            Value::Bool(true)});

  auto items = std::make_shared<Table>(
      "items", Schema({{"id", TypeId::kInt64, false},
                       {"source_id", TypeId::kInt64, false},
                       {"engagement", TypeId::kDouble, false}}));
  int64_t id = 0;
  for (int s = 1; s <= 3; ++s) {
    int posts = s == 2 ? 9 : 3;  // the blog farm floods
    for (int p = 0; p < posts; ++p) {
      (void)items->AppendRow({Value::Int64(++id), Value::Int64(s),
                              Value::Double(10.0 * s + p)});
    }
  }

  // Pipeline with lineage capture: scan -> join -> group by source name.
  auto s_rel = LineageScan(*sources, nullptr, /*capture=*/true);
  auto i_rel = LineageScan(*items, nullptr, true);
  auto joined = LineageJoin(*s_rel, *i_rel, /*sources.id*/ 0,
                            /*items.source_id*/ 1, true);

  AggregateSpec count;
  count.func = AggFunc::kCountStar;
  count.result_type = TypeId::kInt64;
  count.name = "posts";
  AggregateSpec engagement;
  engagement.func = AggFunc::kSum;
  engagement.arg = MakeColumnRef(5, TypeId::kDouble, "engagement");
  engagement.result_type = TypeId::kDouble;
  engagement.name = "total_engagement";
  auto report = LineageAggregate(*joined, {/*name*/ 1},
                                 {count, engagement}, true);

  std::printf("source          posts  engagement\n");
  size_t suspicious = 0;
  for (size_t r = 0; r < report->num_rows(); ++r) {
    int64_t posts = report->data.column(1).GetInt64(r);
    std::printf("%-15s %5lld  %10.1f\n",
                report->data.column(0).GetString(r).c_str(),
                static_cast<long long>(posts),
                report->data.column(2).GetDouble(r));
    if (posts > 5) suspicious = r;
  }

  // Audit: which exact base rows produced the outlier?
  std::printf("\nAuditing the outlier row via backward lineage:\n");
  auto item_rows = TraceRow(*report, suspicious, "items");
  auto source_rows = TraceRow(*report, suspicious, "sources");
  std::printf("  contributing sources rows: ");
  for (const LineageRef& ref : *source_rows) {
    std::printf("%lld ", static_cast<long long>(ref.row));
  }
  std::printf("\n  contributing items rows:   ");
  for (const LineageRef& ref : *item_rows) {
    std::printf("%lld ", static_cast<long long>(ref.row));
  }
  std::printf(
      "\n  -> every number in the report is attributable to exact base "
      "rows; no trust required.\n");
  return 0;
}
