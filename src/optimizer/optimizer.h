#ifndef AGORA_OPTIMIZER_OPTIMIZER_H_
#define AGORA_OPTIMIZER_OPTIMIZER_H_

#include "common/result.h"
#include "optimizer/cardinality.h"
#include "optimizer/stats.h"
#include "plan/logical_plan.h"

namespace agora {

/// Per-rule switches; benchmarks toggle these for the E4 ablations.
struct OptimizerOptions {
  bool enable_constant_folding = true;
  bool enable_predicate_pushdown = true;
  bool enable_join_reorder = true;
  bool enable_projection_pruning = true;
  /// Flag scans with pushed range predicates as zone-map eligible.
  bool enable_zone_maps = true;
  /// Resolve HybridStrategy::kAuto by comparing pre- vs post-filter cost
  /// estimates. When off, the legacy fixed selectivity threshold applies
  /// (E4 ablations). kAuto is always resolved either way.
  bool enable_hybrid_cost_strategy = true;
  /// Force every hybrid fusion node onto one strategy regardless of what
  /// the statement requested (kAuto = no forcing). Lets SQL-path tests and
  /// benchmarks sweep strategies without new syntax.
  HybridStrategy hybrid_force_strategy = HybridStrategy::kAuto;

  /// Everything off: the plan executes in syntactic order (the "ORM-grade"
  /// naive plan used as the E4 baseline).
  static OptimizerOptions AllDisabled() {
    OptimizerOptions o;
    o.enable_constant_folding = false;
    o.enable_predicate_pushdown = false;
    o.enable_join_reorder = false;
    o.enable_projection_pruning = false;
    o.enable_zone_maps = false;
    o.enable_hybrid_cost_strategy = false;
    return o;
  }
};

/// Cost-based logical optimizer. Passes run in order:
///   1. constant folding over all predicates/projections
///   2. predicate pushdown (through joins into scans; cross -> inner)
///   3. DP join reordering (DPsub up to 12 relations, greedy beyond)
///   4. projection pruning (column-level, down to scan projections)
///   5. zone-map flagging on scans with pushed range predicates
class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {})
      : options_(options), estimator_(&stats_cache_) {}

  /// Rewrites `plan`. The input tree is not reused afterwards (nodes may
  /// be shared into the output).
  Result<LogicalOpPtr> Optimize(LogicalOpPtr plan);

  const OptimizerOptions& options() const { return options_; }
  /// Mutable rule switches; tests and the E4 ablation benchmarks flip
  /// hybrid strategy forcing / cost rules between statements.
  OptimizerOptions& mutable_options() { return options_; }
  CardinalityEstimator& estimator() { return estimator_; }

 private:
  OptimizerOptions options_;
  StatsCache stats_cache_;
  CardinalityEstimator estimator_;
};

namespace optimizer_internal {

/// Pass 1: folds constant subtrees in every expression of the plan.
LogicalOpPtr FoldPlanConstants(const LogicalOpPtr& node);

/// Pass 2: pushes filter conjuncts toward the scans. `inherited` are
/// predicates bound against `node`'s output schema.
LogicalOpPtr PushDownPredicates(const LogicalOpPtr& node,
                                std::vector<ExprPtr> inherited);

/// Pass 3: reorders maximal inner/cross join regions by estimated cost.
LogicalOpPtr ReorderJoins(const LogicalOpPtr& node,
                          CardinalityEstimator* estimator);

/// Pass 4: narrows every operator to the columns its ancestors need.
LogicalOpPtr PruneColumns(const LogicalOpPtr& root);

/// Pass 5: marks scans whose pushed predicates can use zone maps.
void FlagZoneMaps(const LogicalOpPtr& node);

/// Pass 0 (always on): resolves HybridStrategy::kAuto on every
/// LogicalScoreFusion — cost-based when enabled, legacy threshold rule
/// otherwise — and picks the physical vector index for each
/// LogicalVectorTopK (flat for exact pre-filtered plans, IVF/HNSW for
/// post-filtered ANN plans). Records the estimates for EXPLAIN.
void ResolveHybridStrategies(const LogicalOpPtr& node,
                             const OptimizerOptions& options,
                             CardinalityEstimator* estimator);

}  // namespace optimizer_internal

}  // namespace agora

#endif  // AGORA_OPTIMIZER_OPTIMIZER_H_
