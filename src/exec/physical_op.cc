#include "exec/physical_op.h"

#include <cstring>

#include "common/string_util.h"
#include "common/verify.h"
#include "storage/chunk_verify.h"

namespace agora {

std::string ExecStats::ToString() const {
  std::string out;
  out += "rows_scanned=" + FormatCount(rows_scanned);
  out += " blocks_read=" + FormatCount(blocks_read);
  out += " blocks_skipped=" + FormatCount(blocks_skipped);
  out += " rows_joined=" + FormatCount(rows_joined);
  out += " probe_calls=" + FormatCount(probe_calls);
  out += " rows_aggregated=" + FormatCount(rows_aggregated);
  out += " rows_sorted=" + FormatCount(rows_sorted);
  out += " bytes_materialized=" + FormatCount(bytes_materialized);
  if (hybrid_filter_rows > 0 || vector_distances > 0 ||
      fusion_candidates > 0) {
    out += " hybrid_filter_rows=" + FormatCount(hybrid_filter_rows);
    out += " vector_distances=" + FormatCount(vector_distances);
    out += " overfetch_retries=" + FormatCount(overfetch_retries);
    out += " fusion_candidates=" + FormatCount(fusion_candidates);
  }
  if (hash_table_entries > 0 || hash_table_lookups > 0 ||
      bloom_checked_rows > 0) {
    out += " hash_table_entries=" + FormatCount(hash_table_entries);
    out += " hash_table_slots=" + FormatCount(hash_table_slots);
    out += " hash_table_lookups=" + FormatCount(hash_table_lookups);
    out += " hash_table_probe_steps=" + FormatCount(hash_table_probe_steps);
    out += " bloom_checked_rows=" + FormatCount(bloom_checked_rows);
    out += " bloom_filtered_rows=" + FormatCount(bloom_filtered_rows);
  }
  if (expr_rows_evaluated > 0 || sel_vector_hits > 0 ||
      filter_gathers_avoided > 0) {
    out += " expr_rows_evaluated=" + FormatCount(expr_rows_evaluated);
    out += " sel_vector_hits=" + FormatCount(sel_vector_hits);
    out += " filter_gathers_avoided=" + FormatCount(filter_gathers_avoided);
  }
  if (mem_bytes_reserved_peak > 0) {
    out += " mem_bytes_reserved_peak=" + FormatCount(mem_bytes_reserved_peak);
  }
  if (mem_budget_rejections > 0) {
    out += " mem_budget_rejections=" + FormatCount(mem_budget_rejections);
  }
  if (spill_partitions > 0 || spill_bytes_written > 0) {
    out += " spill_partitions=" + FormatCount(spill_partitions);
    out += " spill_bytes_written=" + FormatCount(spill_bytes_written);
    out += " spill_bytes_read=" + FormatCount(spill_bytes_read);
  }
  return out;
}

Status PhysicalOperator::Open() {
  MetricSpan span =
      StatsSpan(context_ != nullptr ? &context_->stats : nullptr, op_id_);
  return OpenImpl();
}

Status PhysicalOperator::Next(Chunk* chunk, bool* done) {
  // Deadline/cancel checks live in the same non-virtual wrapper as
  // verification: every serial pull passes here, so a timed-out query
  // unwinds at the next chunk boundary no matter which operator is on
  // top. The happy path is two loads (and a clock read when a deadline
  // is armed); name() is only rendered once the query is already dead.
  if (context_ != nullptr && context_->control != nullptr &&
      (context_->control->cancel_requested() ||
       context_->control->deadline_passed())) {
    return context_->control->Check(name().c_str());
  }
  MetricSpan span =
      StatsSpan(context_ != nullptr ? &context_->stats : nullptr, op_id_);
  Status status = NextImpl(chunk, done);
  if (status.ok()) {
    // AGORA_VERIFY: every chunk crossing an operator boundary is checked
    // against the producer's declared schema here, in the one non-virtual
    // wrapper all pulls go through.
    if (VerificationEnabled()) {
      AGORA_RETURN_IF_ERROR(VerifyChunk(*chunk, schema_, name(), *done));
    }
    span.AddRows(static_cast<int64_t>(chunk->num_rows()));
  }
  return status;
}

namespace {

void WalkProfile(const PhysicalOperator* op, int depth, const ExecStats& stats,
                 std::vector<OperatorProfileNode>* out) {
  OperatorProfileNode node;
  node.name = op->name();
  node.depth = depth;
  const int id = op->op_id();
  if (id >= 0 && static_cast<size_t>(id) < stats.op_timings.size()) {
    const OpTiming& timing = stats.op_timings[id];
    node.busy_ns = timing.busy_ns;
    node.rows_out = timing.rows_out;
    node.invocations = timing.invocations;
  }
  out->push_back(std::move(node));
  // Phases render as pseudo-children ("HashJoin::build") so EXPLAIN
  // ANALYZE attributes their self time separately from the operator's.
  for (const OperatorPhase& phase : op->phases()) {
    OperatorProfileNode pnode;
    pnode.name = op->name() + "::" + phase.name;
    pnode.depth = depth + 1;
    if (phase.op_id >= 0 &&
        static_cast<size_t>(phase.op_id) < stats.op_timings.size()) {
      const OpTiming& timing = stats.op_timings[phase.op_id];
      pnode.busy_ns = timing.busy_ns;
      pnode.rows_out = timing.rows_out;
      pnode.invocations = timing.invocations;
    }
    out->push_back(std::move(pnode));
  }
  for (const PhysicalOperator* child : op->children()) {
    WalkProfile(child, depth + 1, stats, out);
  }
}

}  // namespace

std::vector<OperatorProfileNode> CollectProfile(const PhysicalOperator* root,
                                                const ExecStats& stats) {
  std::vector<OperatorProfileNode> nodes;
  if (root != nullptr) WalkProfile(root, 0, stats, &nodes);
  return nodes;
}

Result<Chunk> CollectAll(PhysicalOperator* op) {
  AGORA_RETURN_IF_ERROR(op->Open());
  Chunk result(op->schema());
  ExecContext* context = op->context();
  bool done = false;
  while (!done) {
    Chunk chunk;
    AGORA_RETURN_IF_ERROR(op->Next(&chunk, &done));
    if (context != nullptr) {
      AGORA_RETURN_IF_ERROR(context->CheckMemoryBudget("CollectAll"));
    }
    size_t rows = chunk.num_rows();
    for (size_t r = 0; r < rows; ++r) {
      result.AppendRowFrom(chunk, r);
    }
    if (op->schema().num_fields() == 0) {
      result.SetExplicitRowCount(result.num_rows() + rows);
    }
  }
  return result;
}

void AppendKeyBytes(const ColumnVector& col, size_t row, std::string* out) {
  if (col.IsNull(row)) {
    out->push_back('\x00');
    return;
  }
  switch (col.type()) {
    case TypeId::kString: {
      out->push_back('\x01');
      const std::string& s = col.GetString(row);
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      break;
    }
    case TypeId::kDouble: {
      out->push_back('\x02');
      double d = col.GetDouble(row);
      // Normalize -0.0 so it groups with +0.0.
      if (d == 0.0) d = 0.0;
      out->append(reinterpret_cast<const char*>(&d), sizeof(d));
      break;
    }
    default: {
      out->push_back('\x03');
      int64_t v = col.GetInt64(row);
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
  }
}

}  // namespace agora
