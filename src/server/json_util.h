#ifndef AGORA_SERVER_JSON_UTIL_H_
#define AGORA_SERVER_JSON_UTIL_H_

// Minimal JSON support for the HTTP front end: a recursive-descent
// parser for request bodies and string escaping for response bodies.
// The engine has no third-party dependencies, so the server carries its
// own ~200-line JSON reader rather than pulling one in. Full JSON
// grammar (RFC 8259) minus \uXXXX surrogate pairs, which the /query
// body never needs; lone escapes decode as a replacement '?'.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace agora {

/// One parsed JSON value. A tagged struct rather than a class hierarchy:
/// request bodies are tiny and short-lived, so flat storage with empty
/// unused members is simpler than a variant.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> object_items;
  std::vector<JsonValue> array_items;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as a single JSON document. Trailing non-whitespace
/// bytes, unterminated strings, bad escapes and oversized nesting all
/// fail with a ParseError Status naming the byte offset.
Result<JsonValue> ParseJson(std::string_view text);

/// Appends `s` to `*out` as a quoted JSON string, escaping quotes,
/// backslashes and control characters.
void AppendJsonString(std::string* out, std::string_view s);

/// Convenience wrapper around AppendJsonString.
std::string JsonQuote(std::string_view s);

}  // namespace agora

#endif  // AGORA_SERVER_JSON_UTIL_H_
