file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_pipeline.dir/bench_e5_pipeline.cc.o"
  "CMakeFiles/bench_e5_pipeline.dir/bench_e5_pipeline.cc.o.d"
  "bench_e5_pipeline"
  "bench_e5_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
