#ifndef AGORA_STORAGE_CHUNK_VERIFY_H_
#define AGORA_STORAGE_CHUNK_VERIFY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/chunk.h"
#include "types/schema.h"

namespace agora {

/// Debug verification of one chunk crossing an operator boundary
/// (AGORA_VERIFY; called from the non-virtual PhysicalOperator::Next
/// wrapper). Checks, in order:
///  * a columnless chunk is only legal as the end-of-stream sentinel
///    (`done` set) or under a zero-field schema (COUNT(*) pipelines);
///  * the column count matches the operator's declared schema;
///  * each column's type matches its schema field;
///  * each column's payload array covers the rows its validity vector
///    declares (ColumnVector::CheckConsistency);
///  * every column agrees on the row count;
///  * the producer protocol "a chunk may be empty only together with
///    done" holds.
/// `op_name` labels the failing operator in the error message.
Status VerifyChunk(const Chunk& chunk, const Schema& schema,
                   std::string_view op_name, bool done);

/// Debug verification of a selection vector: every index must address a
/// row of the input, i.e. lie in [0, input_rows). Chunk::GatherRows runs
/// this when verification is on.
Status VerifySelection(const std::vector<uint32_t>& sel, size_t input_rows,
                       std::string_view op_name);

}  // namespace agora

#endif  // AGORA_STORAGE_CHUNK_VERIFY_H_
