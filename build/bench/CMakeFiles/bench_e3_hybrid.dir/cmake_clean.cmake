file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_hybrid.dir/bench_e3_hybrid.cc.o"
  "CMakeFiles/bench_e3_hybrid.dir/bench_e3_hybrid.cc.o.d"
  "bench_e3_hybrid"
  "bench_e3_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
