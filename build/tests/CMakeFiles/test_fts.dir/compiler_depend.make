# Empty compiler generated dependencies file for test_fts.
# This may be replaced when dependencies are built.
