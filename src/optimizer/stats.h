#ifndef AGORA_OPTIMIZER_STATS_H_
#define AGORA_OPTIMIZER_STATS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/table.h"

namespace agora {

/// Per-column statistics used by the cardinality estimator.
struct ColumnStats {
  int64_t ndv = 0;       // number of distinct non-null values
  int64_t null_count = 0;
  double min = 0;        // numeric columns only
  double max = 0;
  bool has_minmax = false;
};

/// Per-table statistics: exact row count plus per-column NDV/min/max.
/// Computed with a full pass (exact at this project's scales) and cached.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;
};

/// Computes statistics for every column of `table`.
TableStats ComputeTableStats(const Table& table);

/// Cache keyed by table identity + row count (stale entries recompute
/// after appends). Identity is Table::id(), never a pointer: ids are
/// never reused, so a table created after a concurrent DROP TABLE can
/// never be served the dropped table's statistics even if it lands on
/// the same heap address. Owned by the Optimizer; thread-safe —
/// concurrent planners may Get() while another thread populates an
/// entry (two racing misses may both compute; last insert wins, both
/// results are identical). Entries are shared_ptr snapshots, so a
/// caller's stats stay valid while a concurrent recompute replaces the
/// cache entry.
class StatsCache {
 public:
  /// Returns cached stats for `table`, computing them on first use.
  std::shared_ptr<const TableStats> Get(const Table& table);

  /// Drops the entry for table id `table_id`, if any. Called when a
  /// table is dropped so the cache does not grow with dead entries;
  /// correctness never depends on it (ids are not reused).
  void Evict(uint64_t table_id);

 private:
  struct Entry {
    size_t row_count;
    std::shared_ptr<const TableStats> stats;
  };
  Mutex mu_;
  std::unordered_map<uint64_t, Entry> cache_ AGORA_GUARDED_BY(mu_);
};

}  // namespace agora

#endif  // AGORA_OPTIMIZER_STATS_H_
