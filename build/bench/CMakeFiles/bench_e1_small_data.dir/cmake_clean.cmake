file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_small_data.dir/bench_e1_small_data.cc.o"
  "CMakeFiles/bench_e1_small_data.dir/bench_e1_small_data.cc.o.d"
  "bench_e1_small_data"
  "bench_e1_small_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_small_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
