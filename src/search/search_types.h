#ifndef AGORA_SEARCH_SEARCH_TYPES_H_
#define AGORA_SEARCH_SEARCH_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "fts/inverted_index.h"
#include "vec/flat_index.h"
#include "vec/hnsw_index.h"
#include "vec/ivf_index.h"

namespace agora {

/// How keyword and vector rankings are combined.
enum class ScoreFusion {
  kWeightedSum,  // min-max-normalized weighted sum
  kRrf,          // reciprocal rank fusion
};

/// Execution strategy for fused hybrid search. The optimizer resolves
/// kAuto into one of the concrete strategies before lowering.
enum class HybridStrategy {
  kAuto,        // let the optimizer choose (cost-based)
  kPreFilter,   // evaluate filter first, exact search over survivors
  kPostFilter,  // index search with over-fetch, filter the candidates
};

struct HybridExecOptions {
  HybridStrategy strategy = HybridStrategy::kAuto;
  /// Selectivity threshold used by the legacy heuristic (pre-filter when
  /// estimated selectivity is below this). Only consulted when the
  /// cost-based strategy rule is disabled (E4 ablations).
  double prefilter_selectivity_threshold = 0.05;
  /// Post-filter over-fetch multiplier (fetch k * overfetch candidates).
  size_t overfetch = 4;
  /// Max over-fetch doublings before giving up on filling k results.
  size_t max_retries = 3;
};

/// Weights and method for combining keyword and vector ranked lists.
struct FusionParams {
  double keyword_weight = 0.5;
  double vector_weight = 0.5;
  ScoreFusion fusion = ScoreFusion::kWeightedSum;
  size_t rrf_k = 60;
};

/// A scored result document.
struct ScoredDoc {
  int64_t id;
  double score;          // fused
  double keyword_score;  // raw BM25 (0 when no keyword component)
  double vector_score;   // similarity in [~0..1] (0 when no vector)
};

/// Which physical vector index serves a LogicalVectorTopK. Chosen by the
/// optimizer: pre-filtered plans need the exact flat index, post-filtered
/// plans prefer an ANN structure.
enum class VectorIndexChoice {
  kUnchosen,
  kFlat,  // exact brute force
  kIvf,   // inverted-file partitions
  kHnsw,  // navigable small-world graph
};

std::string_view VectorIndexChoiceToString(VectorIndexChoice choice);

/// "auto" / "prefilter" / "postfilter" (EXPLAIN + stats rendering).
std::string_view HybridStrategyToString(HybridStrategy strategy);

/// Search access paths attached to a catalog table, making keyword and
/// vector predicates plannable in the declarative pipeline. The index
/// objects are owned by whoever built them (e.g. HybridCollection); they
/// must outlive the catalog attachment. Document ids are row positions in
/// the attached table.
struct TableSearchIndexes {
  /// Text column served by the inverted index ("" = none).
  std::string text_column;
  const InvertedIndex* text_index = nullptr;

  /// Embedding column served by the vector indexes ("" = none). flat is
  /// required when vector search is used; ivf/hnsw are optional ANN
  /// alternatives over the same vectors.
  std::string vector_column;
  const FlatIndex* flat_index = nullptr;
  const IvfFlatIndex* ivf_index = nullptr;
  const HnswIndex* hnsw_index = nullptr;
};

}  // namespace agora

#endif  // AGORA_SEARCH_SEARCH_TYPES_H_
