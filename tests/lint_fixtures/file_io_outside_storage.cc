// Golden violation fixture for scripts/agora_lint.py (never compiled):
// direct file IO outside src/storage/ and src/txn/ bypasses the
// storage-layer helpers that own error handling, temp-file cleanup, and
// spill IO accounting (ReadCsvFile/WriteCsvFile, SpillManager).
// lint-as: src/engine/bad_file_io.cc
// expect-violation: file-io-outside-storage

#include <cstdio>
#include <fstream>
#include <string>

namespace agora {

void DumpDebugState(const std::string& path) {
  std::ofstream out(path);
  out << "state\n";
}

void AppendLog(const std::string& path) {
  std::FILE* f = fopen(path.c_str(), "a");
  if (f != nullptr) fclose(f);
}

}  // namespace agora
