#ifndef AGORA_HYBRID_COLLECTION_H_
#define AGORA_HYBRID_COLLECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fts/inverted_index.h"
#include "optimizer/cardinality.h"
#include "storage/table.h"
#include "vec/flat_index.h"
#include "vec/ivf_index.h"

namespace agora {

/// One document in a hybrid collection: free text (keyword-searchable), a
/// dense embedding (vector-searchable) and structured attributes
/// (SQL-filterable). This is the workload shape the SIGMOD'25 panel calls
/// out: "solutions are crappy when you combine diverse workloads like
/// vectors, keywords, and relational queries".
struct HybridDoc {
  std::string text;
  Vecf embedding;
  std::vector<Value> attrs;  // must match the collection's attribute schema
};

/// How keyword and vector rankings are combined.
enum class ScoreFusion {
  kWeightedSum,  // min-max-normalized weighted sum
  kRrf,          // reciprocal rank fusion
};

/// A hybrid query: any subset of {keywords, vector, filter} may be set.
struct HybridQuery {
  std::string keywords;     // empty = no keyword component
  Vecf embedding;           // empty = no vector component
  std::string filter_sql;   // SQL boolean over attributes; empty = none
  size_t k = 10;
  double keyword_weight = 0.5;
  double vector_weight = 0.5;
  ScoreFusion fusion = ScoreFusion::kWeightedSum;
  size_t rrf_k = 60;
};

/// Execution strategy for the fused engine.
enum class HybridStrategy {
  kAuto,        // cost-based: pre-filter when the filter is selective
  kPreFilter,   // evaluate filter first, exact search over survivors
  kPostFilter,  // index search with over-fetch, filter the candidates
};

struct HybridExecOptions {
  HybridStrategy strategy = HybridStrategy::kAuto;
  /// kAuto picks pre-filter when estimated selectivity is below this.
  double prefilter_selectivity_threshold = 0.05;
  /// Post-filter over-fetch multiplier (fetch k * overfetch candidates).
  size_t overfetch = 4;
  /// Max over-fetch doublings before giving up on filling k results.
  size_t max_retries = 3;
};

/// Counters describing how a hybrid query executed.
struct HybridQueryStats {
  std::string strategy;            // "prefilter" / "postfilter" / "federated"
  size_t filter_rows_evaluated = 0;  // rows the SQL predicate touched
  size_t vector_distances = 0;       // distance computations
  size_t retries = 0;                // over-fetch loop iterations
  size_t candidates = 0;             // docs considered for fusion
};

/// A scored result document.
struct ScoredDoc {
  int64_t id;
  double score;          // fused
  double keyword_score;  // raw BM25 (0 when no keyword component)
  double vector_score;   // similarity in [~0..1] (0 when no vector)
};

/// A collection of hybrid documents with three access paths — a columnar
/// attribute table, a BM25 inverted index and flat + IVF vector indexes —
/// and two executors over them:
///
///  * `Search` — the FUSED engine: one planner sees all three predicates
///    and picks pre- vs post-filtering by estimated selectivity.
///  * `SearchFederated` — the BOLTED-TOGETHER baseline: three independent
///    engines queried separately, intersected client-side with an
///    over-fetch loop. Deliberately mirrors gluing a vector DB, a search
///    engine and an RDBMS together.
class HybridCollection {
 public:
  /// `attr_schema` names the structured attributes; `dim` is the
  /// embedding dimensionality.
  HybridCollection(Schema attr_schema, size_t dim, IvfOptions ivf = {});

  /// Appends a document; returns its id (position). Embeddings must have
  /// the collection's dimensionality.
  Result<int64_t> Add(HybridDoc doc);

  /// Trains + fills the IVF index and computes attribute statistics.
  /// Call once after bulk loading (Add after Build is rejected).
  Status BuildIndexes();

  size_t size() const { return attrs_->num_rows(); }
  const Schema& attr_schema() const { return attrs_->schema(); }

  /// Fused hybrid search.
  Result<std::vector<ScoredDoc>> Search(const HybridQuery& query,
                                        const HybridExecOptions& options = {},
                                        HybridQueryStats* stats = nullptr);

  /// Federated baseline (see class comment).
  Result<std::vector<ScoredDoc>> SearchFederated(
      const HybridQuery& query, HybridQueryStats* stats = nullptr);

  /// Exact reference result computed by brute force (tests).
  Result<std::vector<ScoredDoc>> SearchExact(const HybridQuery& query);

 private:
  Result<ExprPtr> BindFilter(const std::string& filter_sql) const;
  Result<std::vector<uint8_t>> EvaluateFilterBitmap(const ExprPtr& filter,
                                                    size_t* rows_evaluated);
  Result<double> EstimateFilterSelectivity(const ExprPtr& filter);
  std::vector<ScoredDoc> Fuse(const HybridQuery& query,
                              const std::vector<SearchHit>& keyword_hits,
                              const std::vector<Neighbor>& vector_hits,
                              size_t k) const;

  std::shared_ptr<Table> attrs_;
  InvertedIndex text_index_;
  FlatIndex flat_index_;
  IvfFlatIndex ivf_index_;
  std::vector<std::string> texts_;  // retained for exact rescoring
  bool built_ = false;
  StatsCache stats_cache_;
};

/// Deterministic synthetic workload for tests/benchmarks: `n` product-like
/// documents with category/price/rating attributes, bag-of-words text over
/// a topic vocabulary and topic-clustered `dim`-dimensional embeddings.
/// Queries that combine a topic keyword, a topic centroid vector and a
/// price filter then have meaningfully correlated answers.
struct SyntheticHybridData {
  std::vector<HybridDoc> docs;
  Schema attr_schema;
  /// Topic centroids usable as query embeddings.
  std::vector<Vecf> topic_centroids;
  std::vector<std::string> topic_names;
};
SyntheticHybridData MakeSyntheticHybridData(size_t n, size_t dim,
                                            size_t topics = 8,
                                            uint64_t seed = 42);

}  // namespace agora

#endif  // AGORA_HYBRID_COLLECTION_H_
