// ORM anti-pattern example: the same report computed three ways — lazy
// N+1 loading, one eager join, and a set-oriented SQL aggregate — with
// round trips and time printed for each.
//
// "Many performance problems are due to the ORM and never arise at the
// DBMS" (SIGMOD'25 panel).

#include <cstdio>

#include "common/timer.h"
#include "engine/database.h"
#include "orm/orm.h"

int main() {
  using namespace agora;
  Database db;
  (void)db.Execute("CREATE TABLE customers (id BIGINT, name VARCHAR)");
  (void)db.Execute(
      "CREATE TABLE orders (id BIGINT, customer_id BIGINT, amount DOUBLE)");

  OrmSession session(&db);
  ModelDef customers;
  customers.table = "customers";
  customers.has_many.push_back({"orders", "orders", "customer_id"});
  session.RegisterModel(customers);
  ModelDef orders;
  orders.table = "orders";
  session.RegisterModel(orders);

  constexpr int kCustomers = 500;
  for (int c = 1; c <= kCustomers; ++c) {
    (void)session.Insert("customers",
                         {{"id", Value::Int64(c)},
                          {"name", Value::String("c" + std::to_string(c))}});
    for (int o = 0; o < 4; ++o) {
      (void)session.Insert("orders",
                           {{"id", Value::Int64(c * 10 + o)},
                            {"customer_id", Value::Int64(c)},
                            {"amount", Value::Double(c + o * 0.25)}});
    }
  }
  (void)db.Execute("CREATE INDEX o_cust ON orders (customer_id)");

  // 1. The lazy ORM way: touch each customer's orders (N+1 statements).
  session.ResetStatementCount();
  Timer lazy_timer;
  double lazy_total = 0;
  auto all = session.All("customers");
  for (const Entity& customer : *all) {
    auto related = session.Related(customer, "orders");
    for (const Entity& order : *related) {
      lazy_total += order.Get("amount").AsDouble();
    }
  }
  std::printf("lazy ORM:   total=%.2f  statements=%lld  time=%.2f ms\n",
              lazy_total,
              static_cast<long long>(session.statements_issued()),
              lazy_timer.ElapsedMillis());

  // 2. The eager ORM way: one join, grouped client-side.
  session.ResetStatementCount();
  Timer eager_timer;
  double eager_total = 0;
  auto grouped = session.EagerLoadChildren("customers", "orders");
  for (const auto& [key, children] : *grouped) {
    for (const Entity& order : children) {
      eager_total += order.Get("amount").AsDouble();
    }
  }
  std::printf("eager ORM:  total=%.2f  statements=%lld  time=%.2f ms\n",
              eager_total,
              static_cast<long long>(session.statements_issued()),
              eager_timer.ElapsedMillis());

  // 3. What the DBMS would do if simply asked: one aggregate.
  Timer sql_timer;
  auto result = db.Execute("SELECT SUM(amount) FROM orders");
  std::printf("raw SQL:    total=%s   statements=1    time=%.2f ms\n",
              result->Get(0, 0).ToString().c_str(),
              sql_timer.ElapsedMillis());

  std::printf(
      "\nSame answer every time — the slowdown lives in the access "
      "layer's 1+N round trips, not in the database.\n");
  return 0;
}
