#include "expr/expr_rewrite.h"

namespace agora {

namespace {

/// Rebuilds `e` with children transformed by `recurse`. The callback owns
/// per-node decisions; this handles reconstruction for every node kind.
ExprPtr Rebuild(const ExprPtr& e,
                const std::function<ExprPtr(const ExprPtr&)>& recurse) {
  switch (e->kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kComparison: {
      const auto* n = static_cast<const ComparisonExpr*>(e.get());
      return std::make_shared<ComparisonExpr>(n->op(), recurse(n->left()),
                                              recurse(n->right()));
    }
    case ExprKind::kArithmetic: {
      const auto* n = static_cast<const ArithmeticExpr*>(e.get());
      return std::make_shared<ArithmeticExpr>(n->op(), recurse(n->left()),
                                              recurse(n->right()),
                                              n->result_type());
    }
    case ExprKind::kLogical: {
      const auto* n = static_cast<const LogicalExpr*>(e.get());
      std::vector<ExprPtr> children;
      children.reserve(n->children().size());
      for (const auto& c : n->children()) children.push_back(recurse(c));
      return std::make_shared<LogicalExpr>(n->op(), std::move(children));
    }
    case ExprKind::kNot: {
      const auto* n = static_cast<const NotExpr*>(e.get());
      return std::make_shared<NotExpr>(recurse(n->child()));
    }
    case ExprKind::kIsNull: {
      const auto* n = static_cast<const IsNullExpr*>(e.get());
      return std::make_shared<IsNullExpr>(recurse(n->child()), n->negated());
    }
    case ExprKind::kLike: {
      const auto* n = static_cast<const LikeExpr*>(e.get());
      return std::make_shared<LikeExpr>(recurse(n->child()), n->pattern(),
                                        n->negated());
    }
    case ExprKind::kInList: {
      const auto* n = static_cast<const InListExpr*>(e.get());
      return std::make_shared<InListExpr>(recurse(n->child()), n->values(),
                                          n->negated());
    }
    case ExprKind::kCast: {
      const auto* n = static_cast<const CastExpr*>(e.get());
      return std::make_shared<CastExpr>(recurse(n->child()),
                                        n->result_type());
    }
    case ExprKind::kFunction: {
      const auto* n = static_cast<const FunctionExpr*>(e.get());
      return std::make_shared<FunctionExpr>(n->func(), recurse(n->arg()),
                                            n->result_type());
    }
    case ExprKind::kCase: {
      const auto* n = static_cast<const CaseExpr*>(e.get());
      std::vector<ExprPtr> conds, results;
      for (const auto& c : n->conditions()) conds.push_back(recurse(c));
      for (const auto& r : n->results()) results.push_back(recurse(r));
      ExprPtr else_result =
          n->else_result() ? recurse(n->else_result()) : nullptr;
      return std::make_shared<CaseExpr>(std::move(conds), std::move(results),
                                        std::move(else_result),
                                        n->result_type());
    }
  }
  return e;
}

}  // namespace

ExprPtr RemapColumns(const ExprPtr& e,
                     const std::function<size_t(size_t)>& fn) {
  if (e->kind() == ExprKind::kColumnRef) {
    const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
    return std::make_shared<ColumnRefExpr>(fn(ref->index()),
                                           ref->result_type(), ref->name());
  }
  std::function<ExprPtr(const ExprPtr&)> recurse =
      [&fn, &recurse](const ExprPtr& child) {
        if (child->kind() == ExprKind::kColumnRef) {
          const auto* ref = static_cast<const ColumnRefExpr*>(child.get());
          return ExprPtr(std::make_shared<ColumnRefExpr>(
              fn(ref->index()), ref->result_type(), ref->name()));
        }
        return Rebuild(child, recurse);
      };
  return Rebuild(e, recurse);
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e) {
  std::vector<ExprPtr> out;
  if (e == nullptr) return out;
  if (e->kind() == ExprKind::kLogical) {
    const auto* n = static_cast<const LogicalExpr*>(e.get());
    if (n->op() == LogicalOp::kAnd) {
      for (const auto& c : n->children()) {
        std::vector<ExprPtr> sub = SplitConjuncts(c);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    }
  }
  out.push_back(e);
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  if (conjuncts.size() == 1) return conjuncts[0];
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(conjuncts));
}

bool RefsWithin(const ExprPtr& e, size_t lo, size_t hi) {
  std::vector<size_t> refs;
  e->CollectColumnRefs(&refs);
  for (size_t r : refs) {
    if (r < lo || r >= hi) return false;
  }
  return true;
}

namespace {

/// True if `e` is a BOOLEAN literal equal to `value` (NULL never matches).
bool IsBoolLiteral(const ExprPtr& e, bool value) {
  if (e->kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr*>(e.get())->value();
  return !v.is_null() && v.type() == TypeId::kBool && v.bool_value() == value;
}

/// Kleene-correct simplification of AND/OR children against TRUE/FALSE
/// literals left behind by per-branch constant folding:
///   AND: a FALSE child dominates (even over NULL); TRUE children drop.
///   OR:  a TRUE child dominates; FALSE children drop.
/// Only applies when every child is statically BOOLEAN (or an untyped
/// NULL literal) so ill-typed trees keep their runtime type errors.
ExprPtr SimplifyLogical(const ExprPtr& e) {
  const auto* n = static_cast<const LogicalExpr*>(e.get());
  const bool is_and = n->op() == LogicalOp::kAnd;
  for (const ExprPtr& c : n->children()) {
    bool untyped_null = c->kind() == ExprKind::kLiteral &&
                        static_cast<const LiteralExpr*>(c.get())
                            ->value().is_null();
    if (c->result_type() != TypeId::kBool && !untyped_null) return e;
  }
  std::vector<ExprPtr> kept;
  for (const ExprPtr& c : n->children()) {
    if (IsBoolLiteral(c, !is_and)) {
      return MakeLiteral(Value::Bool(!is_and));  // dominant literal
    }
    if (!IsBoolLiteral(c, is_and)) kept.push_back(c);  // drop identities
  }
  if (kept.size() == n->children().size()) return e;
  if (kept.empty()) return MakeLiteral(Value::Bool(is_and));
  return std::make_shared<LogicalExpr>(n->op(), std::move(kept));
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& e) {
  if (e->kind() == ExprKind::kLiteral) return e;
  std::function<ExprPtr(const ExprPtr&)> recurse =
      [&recurse](const ExprPtr& child) { return FoldConstants(child); };
  ExprPtr rebuilt = Rebuild(e, recurse);
  if (rebuilt->kind() != ExprKind::kColumnRef && rebuilt->IsConstant()) {
    auto v = rebuilt->EvaluateScalar();
    if (v.ok()) return MakeLiteral(std::move(*v));
  }
  if (rebuilt->kind() == ExprKind::kLogical) {
    return SimplifyLogical(rebuilt);
  }
  return rebuilt;
}

}  // namespace agora
