// Golden violation fixture for scripts/agora_lint.py (never compiled):
// bare .lock()/.unlock() calls outside the RAII guard layer
// (src/common/mutex.h) are banned in src/ — manual pairing is the bug
// class the scoped guards plus capability annotations eliminate, and the
// thread-safety analysis cannot see through an unannotated manual call.
// lint-as: src/server/bad_manual_lock.cc
// expect-violation: manual-lock-unlock

#include <mutex>

namespace agora {

extern std::mutex g_registry_mu;
extern int g_registry_entries;

void BumpRegistry() {
  g_registry_mu.lock();  // must fire: manual acquire
  ++g_registry_entries;
  g_registry_mu.unlock();  // must fire: manual release
}

}  // namespace agora
