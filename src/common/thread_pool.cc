#include "common/thread_pool.h"

#include <cstdlib>
#include <string>

namespace agora {

namespace {

/// Identifies the pool (and worker slot) owning the current thread so
/// Submit from inside a task lands on the worker's own deque.
struct WorkerTls {
  ThreadPool* pool = nullptr;
  size_t id = 0;
};

thread_local WorkerTls tls_worker;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.id;  // stay cache-local; idle peers steal
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    MutexLock lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    MutexLock lock(wake_mu_);
    ++pending_;
  }
  wake_cv_.NotifyOne();
}

std::function<void()> ThreadPool::TakeTask(size_t home) {
  size_t n = queues_.size();
  std::function<void()> task;
  // Own deque first (LIFO back: most recently pushed, cache-warm) ...
  {
    WorkerQueue& q = *queues_[home];
    MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
  }
  // ... then steal FIFO from the other queues (oldest task: largest
  // remaining work under divide-and-conquer submission orders).
  for (size_t i = 1; task == nullptr && i < n; ++i) {
    WorkerQueue& q = *queues_[(home + i) % n];
    MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
  }
  if (task != nullptr) {
    MutexLock lock(wake_mu_);
    --pending_;
  }
  return task;
}

bool ThreadPool::TryRunOneTask() {
  size_t home =
      tls_worker.pool == this ? tls_worker.id : 0;
  std::function<void()> task = TakeTask(home);
  if (task == nullptr) return false;
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t id) {
  tls_worker.pool = this;
  tls_worker.id = id;
  while (true) {
    std::function<void()> task = TakeTask(id);
    if (task != nullptr) {
      task();
      continue;
    }
    MutexLock lock(wake_mu_);
    // Explicit wait loop: guarded reads of stop_/pending_ must stay out
    // of a lambda so the thread-safety analysis sees wake_mu_ held.
    while (!stop_ && pending_ == 0) wake_cv_.Wait(lock);
    if (stop_ && pending_ == 0) return;  // drained; safe to exit
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return pool;
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("AGORA_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return static_cast<size_t>(n);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  {
    MutexLock lock(mu_);
    ++outstanding_;
  }
  auto wrapped = [this, fn = std::move(fn)]() {
    Status status;
    std::exception_ptr exception;
    try {
      status = fn();
    } catch (...) {
      exception = std::current_exception();
    }
    Record(std::move(status), exception);
  };
  if (pool_ == nullptr) {
    wrapped();
  } else {
    pool_->Submit(std::move(wrapped));
  }
}

void TaskGroup::Record(Status status, std::exception_ptr exception) {
  MutexLock lock(mu_);
  if (exception != nullptr && first_exception_ == nullptr) {
    first_exception_ = exception;
  }
  if (!status.ok() && first_error_.ok()) {
    first_error_ = std::move(status);
  }
  if (--outstanding_ == 0) cv_.NotifyAll();
}

Status TaskGroup::Wait() {
  // Help drain the pool so a Wait on a saturated pool makes progress
  // instead of blocking a thread.
  while (pool_ != nullptr && pool_->TryRunOneTask()) {
  }
  MutexLock lock(mu_);
  while (outstanding_ != 0) cv_.Wait(lock);
  if (first_exception_ != nullptr) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
  return first_error_;
}

void TaskGroup::WaitNoStatus() {
  while (pool_ != nullptr && pool_->TryRunOneTask()) {
  }
  MutexLock lock(mu_);
  while (outstanding_ != 0) cv_.Wait(lock);
}

}  // namespace agora
