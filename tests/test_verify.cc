// Tests for the AGORA_VERIFY debug verification layer: chunk checks at
// operator boundaries, selection-vector bounds, and optimizer plan
// invariants. Each verifier is fed deliberately corrupted input and must
// fire with a descriptive Internal status — and stay silent on valid
// input and when verification is disabled.

#include <gtest/gtest.h>

#include "common/verify.h"
#include "engine/database.h"
#include "exec/physical_op.h"
#include "expr/expr.h"
#include "fts/inverted_index.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_verify.h"
#include "plan/logical_plan.h"
#include "storage/chunk_verify.h"
#include "storage/table.h"

namespace agora {
namespace {

/// Scopes the process-wide verification flag so a failing assertion never
/// leaks an enabled verifier into unrelated tests.
class ScopedVerification {
 public:
  explicit ScopedVerification(bool enabled) {
    SetVerificationEnabled(enabled);
  }
  ~ScopedVerification() { SetVerificationEnabled(false); }
};

Schema TwoColumnSchema() {
  Schema s;
  s.AddField({"id", TypeId::kInt64, true});
  s.AddField({"name", TypeId::kString, true});
  return s;
}

Chunk ValidChunk() {
  Chunk chunk(TwoColumnSchema());
  chunk.AppendRow({Value::Int64(1), Value::String("a")});
  chunk.AppendRow({Value::Int64(2), Value::String("b")});
  return chunk;
}

// -- ChunkVerifier -------------------------------------------------------

TEST(ChunkVerifyTest, ValidChunkPasses) {
  EXPECT_TRUE(VerifyChunk(ValidChunk(), TwoColumnSchema(), "op", false).ok());
  EXPECT_TRUE(VerifyChunk(ValidChunk(), TwoColumnSchema(), "op", true).ok());
}

TEST(ChunkVerifyTest, ColumnCountMismatchFires) {
  Chunk chunk;
  ColumnVector col(TypeId::kInt64);
  col.AppendInt64(1);
  chunk.AddColumn(std::move(col));
  Status s = VerifyChunk(chunk, TwoColumnSchema(), "Project", true);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Project"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("1 columns"), std::string::npos) << s.message();
}

TEST(ChunkVerifyTest, ColumnTypeMismatchFires) {
  Chunk chunk;
  ColumnVector id(TypeId::kInt64);
  id.AppendInt64(1);
  ColumnVector name(TypeId::kInt64);  // schema says kString
  name.AppendInt64(2);
  chunk.AddColumn(std::move(id));
  chunk.AddColumn(std::move(name));
  Status s = VerifyChunk(chunk, TwoColumnSchema(), "Scan", false);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("name"), std::string::npos) << s.message();
}

TEST(ChunkVerifyTest, ColumnlessChunkOnlyLegalAtEndOfStream) {
  Chunk sentinel;
  EXPECT_TRUE(VerifyChunk(sentinel, TwoColumnSchema(), "op", true).ok());
  Status s = VerifyChunk(sentinel, TwoColumnSchema(), "op", false);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("end of stream"), std::string::npos)
      << s.message();
}

TEST(ChunkVerifyTest, EmptyChunkWithoutDoneViolatesProtocol) {
  Chunk empty(TwoColumnSchema());
  EXPECT_TRUE(VerifyChunk(empty, TwoColumnSchema(), "op", true).ok());
  Status s = VerifyChunk(empty, TwoColumnSchema(), "op", false);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("producer protocol"), std::string::npos)
      << s.message();
}

TEST(ChunkVerifyTest, RowCountDisagreementFires) {
  Chunk chunk;
  ColumnVector id(TypeId::kInt64);
  id.AppendInt64(1);
  id.AppendInt64(2);
  ColumnVector name(TypeId::kString);
  name.AppendString("only one row");
  chunk.AddColumn(std::move(id));
  chunk.AddColumn(std::move(name));
  Status s = VerifyChunk(chunk, TwoColumnSchema(), "Join", false);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("rows"), std::string::npos) << s.message();
}

TEST(ChunkVerifyTest, ZeroFieldSchemaAllowsColumnlessChunks) {
  Chunk counts;
  counts.SetExplicitRowCount(42);
  EXPECT_TRUE(VerifyChunk(counts, Schema(), "Aggregate", false).ok());
}

TEST(ColumnConsistencyTest, TypelessColumnWithRowsFires) {
  ColumnVector untyped;
  untyped.AppendNull();  // validity grows, no payload array exists
  Status s = untyped.CheckConsistency();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("invalid type"), std::string::npos)
      << s.message();
}

TEST(ColumnConsistencyTest, TypedColumnsPass) {
  ColumnVector col(TypeId::kString);
  col.AppendString("x");
  col.AppendNull();
  EXPECT_TRUE(col.CheckConsistency().ok());
}

// -- Selection verification ---------------------------------------------

TEST(SelectionVerifyTest, InRangeSelectionPasses) {
  EXPECT_TRUE(VerifySelection({0, 2, 1}, 3, "Filter").ok());
  EXPECT_TRUE(VerifySelection({}, 0, "Filter").ok());
}

TEST(SelectionVerifyTest, OutOfRangeIndexFires) {
  Status s = VerifySelection({0, 1, 5}, 3, "Filter");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("index 5"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("Filter"), std::string::npos) << s.message();
}

// -- Operator-boundary hook ----------------------------------------------

/// Emits a chunk with fewer columns than its declared schema: exactly the
/// corruption the Next() wrapper must catch when verification is on.
class CorruptOperator : public PhysicalOperator {
 public:
  CorruptOperator(Schema schema, ExecContext* context)
      : PhysicalOperator(std::move(schema), context) {}
  std::string name() const override { return "CorruptTest"; }

 protected:
  Status OpenImpl() override { return Status::OK(); }
  Status NextImpl(Chunk* chunk, bool* done) override {
    Chunk bad;
    ColumnVector col(TypeId::kInt64);
    col.AppendInt64(7);
    bad.AddColumn(std::move(col));
    *chunk = std::move(bad);
    *done = true;
    return Status::OK();
  }
};

TEST(OperatorBoundaryTest, NextWrapperCatchesCorruptChunk) {
  ScopedVerification verify(true);
  ExecContext context;
  CorruptOperator op(TwoColumnSchema(), &context);
  ASSERT_TRUE(op.Open().ok());
  Chunk chunk;
  bool done = false;
  Status s = op.Next(&chunk, &done);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("chunk verification failed"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("CorruptTest"), std::string::npos)
      << s.message();
}

TEST(OperatorBoundaryTest, DisabledVerificationSkipsTheCheck) {
  ScopedVerification verify(false);
  ExecContext context;
  CorruptOperator op(TwoColumnSchema(), &context);
  ASSERT_TRUE(op.Open().ok());
  Chunk chunk;
  bool done = false;
  EXPECT_TRUE(op.Next(&chunk, &done).ok());
}

// -- PlanVerifier --------------------------------------------------------

std::shared_ptr<Table> MakeTestTable() {
  auto table = std::make_shared<Table>("t", TwoColumnSchema());
  EXPECT_TRUE(table->AppendRow({Value::Int64(1), Value::String("a")}).ok());
  EXPECT_TRUE(table->AppendRow({Value::Int64(2), Value::String("b")}).ok());
  return table;
}

TEST(PlanVerifyTest, ValidPlanPasses) {
  auto scan = std::make_shared<LogicalScan>(MakeTestTable(), "t");
  auto filter = std::make_shared<LogicalFilter>(
      scan, MakeCompare(CompareOp::kGt, MakeColumnRef(0, TypeId::kInt64, "id"),
                        MakeLiteral(Value::Int64(0))));
  EXPECT_TRUE(VerifyPlan(filter.get(), "test").ok());
}

TEST(PlanVerifyTest, UnresolvedColumnBindingFires) {
  auto scan = std::make_shared<LogicalScan>(MakeTestTable(), "t");
  auto filter = std::make_shared<LogicalFilter>(
      scan, MakeCompare(CompareOp::kGt, MakeColumnRef(7, TypeId::kInt64, "x"),
                        MakeLiteral(Value::Int64(0))));
  Status s = VerifyPlan(filter.get(), "after BadPass");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("references column 7"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("after BadPass"), std::string::npos)
      << s.message();
}

TEST(PlanVerifyTest, NullChildFires) {
  auto scan = std::make_shared<LogicalScan>(MakeTestTable(), "t");
  auto filter = std::make_shared<LogicalFilter>(
      scan, MakeCompare(CompareOp::kGt, MakeColumnRef(0, TypeId::kInt64, "id"),
                        MakeLiteral(Value::Int64(0))));
  filter->mutable_children()[0] = nullptr;
  Status s = VerifyPlan(filter.get(), "test");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("null child"), std::string::npos) << s.message();
}

TEST(PlanVerifyTest, ScoreFusionWithoutRankingLeafFires) {
  auto table = MakeTestTable();
  InvertedIndex index;
  auto text = std::make_shared<LogicalTextMatch>("t", "name", "query", &index);
  auto fusion = std::make_shared<LogicalScoreFusion>(
      table, "t", /*k=*/5, FusionParams{}, HybridExecOptions{},
      /*filter=*/nullptr, text, /*vector_child=*/nullptr);
  EXPECT_TRUE(VerifyPlan(fusion.get(), "test").ok());
  fusion->mutable_children().clear();
  Status s = VerifyPlan(fusion.get(), "test");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ranking lea"), std::string::npos)
      << s.message();
}

TEST(PlanVerifyTest, NegativeCostAnnotationFires) {
  auto table = MakeTestTable();
  InvertedIndex index;
  auto text = std::make_shared<LogicalTextMatch>("t", "name", "query", &index);
  auto fusion = std::make_shared<LogicalScoreFusion>(
      table, "t", /*k=*/5, FusionParams{}, HybridExecOptions{},
      /*filter=*/nullptr, text, /*vector_child=*/nullptr);
  fusion->SetCostEstimates(/*selectivity=*/0.5, /*cost_pre=*/-1.0,
                           /*cost_post=*/2.0);
  Status s = VerifyPlan(fusion.get(), "test");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("negative fusion cost"), std::string::npos)
      << s.message();
}

TEST(PlanVerifyTest, SelectivityOutsideUnitIntervalFires) {
  auto table = MakeTestTable();
  InvertedIndex index;
  auto text = std::make_shared<LogicalTextMatch>("t", "name", "query", &index);
  auto fusion = std::make_shared<LogicalScoreFusion>(
      table, "t", /*k=*/5, FusionParams{}, HybridExecOptions{},
      /*filter=*/nullptr, text, /*vector_child=*/nullptr);
  fusion->SetCostEstimates(/*selectivity=*/1.5, /*cost_pre=*/1.0,
                           /*cost_post=*/2.0);
  Status s = VerifyPlan(fusion.get(), "test");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("selectivity"), std::string::npos)
      << s.message();
}

TEST(PlanVerifyTest, OptimizerNamesTheFailingPhase) {
  ScopedVerification verify(true);
  auto scan = std::make_shared<LogicalScan>(MakeTestTable(), "t");
  auto filter = std::make_shared<LogicalFilter>(
      scan, MakeCompare(CompareOp::kGt, MakeColumnRef(9, TypeId::kInt64, "x"),
                        MakeLiteral(Value::Int64(0))));
  Optimizer optimizer;
  auto result = optimizer.Optimize(filter);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("before optimization"),
            std::string::npos)
      << result.status().ToString();
}

// -- End-to-end: real queries stay clean under verification --------------

TEST(VerifyIntegrationTest, RealQueriesPassWithVerificationOn) {
  ScopedVerification verify(true);
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE v (id BIGINT, name VARCHAR)").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO v VALUES (" + std::to_string(i) +
                           ", 'n" + std::to_string(i % 7) + "')")
                    .ok());
  }
  auto distinct =
      db.Execute("SELECT DISTINCT name FROM v ORDER BY name");
  ASSERT_TRUE(distinct.ok()) << distinct.status().ToString();
  auto join = db.Execute(
      "SELECT a.id, b.name FROM v a, v b "
      "WHERE a.id = b.id AND a.id < 10");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  auto agg = db.Execute(
      "SELECT name, COUNT(*), SUM(id) FROM v GROUP BY name");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
}

}  // namespace
}  // namespace agora
