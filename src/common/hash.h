#ifndef AGORA_COMMON_HASH_H_
#define AGORA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace agora {

/// Finalizing 64-bit mixer (splitmix64 variant); good avalanche for
/// integer keys in hash joins and aggregates.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a based string hash with a 64-bit finisher. Not cryptographic.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  // Consume 8 bytes at a time.
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * 0x100000001b3ULL;
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    h = (h ^ *p) * 0x100000001b3ULL;
    ++p;
    --len;
  }
  return HashMix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Combines two hash values (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Hash assigned to NULL rows (matches ColumnVector::HashRow).
inline constexpr uint64_t kNullHash = 0x6e756c6cULL;

/// Salt folded into every vectorized hash-table key hash
/// (exec/hash_table.h) so table bucket choice is decoupled from the raw
/// per-column hashes that other subsystems (stats sketches, hash
/// indexes) also consume.
inline constexpr uint64_t kHashTableSalt = 0x7fb5d329728ea185ULL;

}  // namespace agora

#endif  // AGORA_COMMON_HASH_H_
