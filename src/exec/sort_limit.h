#ifndef AGORA_EXEC_SORT_LIMIT_H_
#define AGORA_EXEC_SORT_LIMIT_H_

#include <string>
#include <vector>

#include "exec/hash_table.h"
#include "exec/physical_op.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"

namespace agora {

/// Blocking full sort: materializes the child, sorts a row permutation by
/// the key expressions (NULLs first on ASC, last on DESC), then streams.
class PhysicalSort : public PhysicalOperator {
 public:
  PhysicalSort(PhysicalOpPtr child, std::vector<SortKey> keys,
               ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "Sort"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 private:
  PhysicalOpPtr child_;
  std::vector<SortKey> keys_;
  Chunk data_;
  std::vector<uint32_t> perm_;
  size_t next_row_ = 0;
};

/// Top-K: like Sort+Limit but keeps only the K best rows while consuming
/// input (bounded memory). Chosen by the physical planner when an ORDER BY
/// is directly followed by a LIMIT.
class PhysicalTopK : public PhysicalOperator {
 public:
  PhysicalTopK(PhysicalOpPtr child, std::vector<SortKey> keys, int64_t k,
               int64_t offset, ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "TopK"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 private:
  PhysicalOpPtr child_;
  std::vector<SortKey> keys_;
  int64_t k_;
  int64_t offset_;
  Chunk result_;
  size_t next_row_ = 0;
};

/// LIMIT/OFFSET passthrough.
class PhysicalLimit : public PhysicalOperator {
 public:
  PhysicalLimit(PhysicalOpPtr child, int64_t limit, int64_t offset,
                ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "Limit"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 private:
  PhysicalOpPtr child_;
  int64_t limit_;   // -1 = unbounded
  int64_t offset_;
  int64_t skipped_ = 0;
  int64_t emitted_ = 0;
};

/// Hash-based duplicate elimination over all columns, backed by the same
/// flat GroupKeyTable the aggregate kernels use: rows hash column-at-a-time
/// (HashBatch) and only first-appearance rows survive. Key semantics are
/// the grouping contract (NULL == NULL, -0.0 merges with +0.0, doubles
/// otherwise bitwise) — identical to the retired per-row string-key path.
class PhysicalDistinct : public PhysicalOperator {
 public:
  PhysicalDistinct(PhysicalOpPtr child, ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "Distinct"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 private:
  /// Folds the table's build-side numbers into ExecStats exactly once,
  /// when the stream ends.
  void ReportTableStats();

  PhysicalOpPtr child_;
  GroupKeyTable seen_;
  std::vector<uint64_t> hash_scratch_;
  std::vector<uint32_t> gid_scratch_;
  std::vector<uint8_t> created_scratch_;
  bool child_done_ = false;
  bool stats_reported_ = false;
};

/// Compares row `a` with row `b` of the evaluated `key_cols` under `keys`;
/// used by Sort and TopK. Returns true when `a` orders strictly before `b`.
bool SortRowLess(const std::vector<ColumnVector>& key_cols,
                 const std::vector<SortKey>& keys, uint32_t a, uint32_t b);

}  // namespace agora

#endif  // AGORA_EXEC_SORT_LIMIT_H_
