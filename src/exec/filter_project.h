#ifndef AGORA_EXEC_FILTER_PROJECT_H_
#define AGORA_EXEC_FILTER_PROJECT_H_

#include <vector>

#include "exec/physical_op.h"
#include "expr/expr.h"

namespace agora {

/// Keeps input rows where `predicate` evaluates to TRUE.
class PhysicalFilter : public PhysicalOperator {
 public:
  PhysicalFilter(PhysicalOpPtr child, ExprPtr predicate,
                 ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "Filter"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

  /// Stateless per-chunk transform used by the morsel pipeline; safe to
  /// call from multiple workers concurrently.
  Status ProcessChunk(const Chunk& input, Chunk* out,
                      ExecStats* stats) const;

  PhysicalOperator* child() const { return child_.get(); }

 private:
  PhysicalOpPtr child_;
  ExprPtr predicate_;
  bool child_done_ = false;
};

/// Evaluates one expression per output column.
class PhysicalProject : public PhysicalOperator {
 public:
  PhysicalProject(PhysicalOpPtr child, std::vector<ExprPtr> exprs,
                  Schema schema, ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "Project"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

  /// Stateless per-chunk transform used by the morsel pipeline; safe to
  /// call from multiple workers concurrently.
  Status ProcessChunk(const Chunk& input, Chunk* out,
                      ExecStats* stats) const;

  PhysicalOperator* child() const { return child_.get(); }

 private:
  PhysicalOpPtr child_;
  std::vector<ExprPtr> exprs_;
};

}  // namespace agora

#endif  // AGORA_EXEC_FILTER_PROJECT_H_
