#ifndef AGORA_EXEC_HYBRID_SEARCH_H_
#define AGORA_EXEC_HYBRID_SEARCH_H_

#include <utility>
#include <vector>

#include "exec/physical_op.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "search/fusion.h"

namespace agora {

/// Executes a LogicalScoreFusion subtree: keyword (BM25) and/or vector
/// (k-NN) ranking combined with an attribute filter under the strategy the
/// optimizer resolved.
///
///  * pre-filter  — evaluate the predicate over the whole table (the
///    bitmap pass is morsel-parallel over disjoint chunk ranges), then
///    search both indexes exactly over the survivor set.
///  * post-filter — probe the ANN / inverted indexes with an over-fetch
///    loop, re-filtering candidates until k results survive.
///
/// The index probe sequence is identical to the legacy fused engine
/// (hybrid::Collection::Search), so results are byte-identical to it —
/// and, because the parallel section only writes disjoint bitmap ranges
/// and per-worker counters, identical at every worker count.
///
/// Open() runs the search; Next() streams the fused top-k as rows
///   [rowid, <attrs...>, score, keyword_score, vector_score,
///    distance (vector plans only; NULL for keyword-only docs)]
/// already sorted by (score desc, rowid asc).
class PhysicalHybridSearch : public PhysicalOperator {
 public:
  PhysicalHybridSearch(const LogicalScoreFusion& fusion,
                       ExecContext* context);

  Status OpenImpl() override;
  Status NextImpl(Chunk* chunk, bool* done) override;
  std::string name() const override { return "HybridSearch"; }

  /// The strategy this operator ran ("prefilter"/"postfilter").
  std::string_view strategy_name() const {
    return HybridStrategyToString(exec_.strategy);
  }

 private:
  Status RunPreFilter();
  Status RunPostFilter();
  /// Records the final vector ranking's distances, sorted by doc id, for
  /// binary-search lookup while emitting rows.
  void StoreFinalDistances(const std::vector<Neighbor>& hits);
  /// Evaluates `filter_` over every table row (parallel over disjoint
  /// kChunkSize ranges). Adds the table's row count to
  /// stats.hybrid_filter_rows, exactly like the legacy full bitmap pass.
  Result<std::vector<uint8_t>> EvaluateFilterBitmap();

  std::shared_ptr<Table> table_;
  size_t k_;
  FusionParams params_;
  HybridExecOptions exec_;
  ExprPtr filter_;

  bool has_text_ = false;
  std::string text_query_;
  const InvertedIndex* text_index_ = nullptr;

  bool has_vec_ = false;
  Vecf vec_query_;
  VectorIndexChoice index_choice_ = VectorIndexChoice::kUnchosen;
  const FlatIndex* flat_index_ = nullptr;
  const IvfFlatIndex* ivf_index_ = nullptr;
  const HnswIndex* hnsw_index_ = nullptr;
  Metric metric_ = Metric::kL2;

  std::vector<ScoredDoc> fused_;
  /// Raw metric distance of each doc in the final vector ranking, sorted
  /// by doc id (docs ranked by keywords only are absent -> NULL distance
  /// column).
  std::vector<std::pair<int64_t, float>> final_distances_;
  size_t emitted_ = 0;
};

}  // namespace agora

#endif  // AGORA_EXEC_HYBRID_SEARCH_H_
