#ifndef AGORA_LINEAGE_LINEAGE_H_
#define AGORA_LINEAGE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"
#include "storage/table.h"

namespace agora {

/// A pointer to one base-table row: the atom of provenance.
struct LineageRef {
  std::string table;
  int64_t row;

  bool operator==(const LineageRef& other) const {
    return row == other.row && table == other.table;
  }
  bool operator<(const LineageRef& other) const {
    if (table != other.table) return table < other.table;
    return row < other.row;
  }
};

/// A relation annotated with why-provenance: for every data row, the set
/// of base-table rows that contributed to it. Produced and consumed by
/// the lineage-aware operators below; backward tracing an output row is
/// just reading its annotation.
///
/// This mirrors the classic eager "perm/GProM-style" lineage capture the
/// panel gestures at ("challenges like data provenance" as a database
/// strength). Capture can be disabled (`capture=false` in the operators),
/// which produces identical data with empty annotations — the E8
/// benchmark measures exactly that delta.
struct AnnotatedRelation {
  Schema schema;
  Chunk data;
  /// lineage[i] = contributing base rows of data row i (sorted, unique).
  /// Empty when capture was disabled.
  std::vector<std::vector<LineageRef>> lineage;

  size_t num_rows() const { return data.num_rows(); }
};

/// Scans `table`, optionally filtering by `predicate` (bound against the
/// table schema). Each surviving row's lineage is the single base row it
/// came from.
Result<AnnotatedRelation> LineageScan(const Table& table,
                                      const ExprPtr& predicate,
                                      bool capture);

/// Hash equi-join on `left_col` = `right_col` (column indexes into the
/// respective schemas). Output lineage is the union of the two input
/// rows' lineage sets.
Result<AnnotatedRelation> LineageJoin(const AnnotatedRelation& left,
                                      const AnnotatedRelation& right,
                                      size_t left_col, size_t right_col,
                                      bool capture);

/// Hash aggregation: group by `group_cols`, computing `aggregates` (bound
/// against the input schema). Output lineage of a group is the union of
/// all member rows' lineage — the full why-provenance of the aggregate.
Result<AnnotatedRelation> LineageAggregate(
    const AnnotatedRelation& input, const std::vector<size_t>& group_cols,
    const std::vector<AggregateSpec>& aggregates, bool capture);

/// Backward trace: the provenance of output row `row`, restricted to
/// `table` (empty string = all tables).
Result<std::vector<LineageRef>> TraceRow(const AnnotatedRelation& relation,
                                         size_t row,
                                         const std::string& table = "");

}  // namespace agora

#endif  // AGORA_LINEAGE_LINEAGE_H_
