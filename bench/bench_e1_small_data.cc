// E1 — "small data is enough": a single core runs TPC-H-class analytics
// comfortably; latency scales ~linearly with scale factor.
//
// Paper quote (SIGMOD'25 panel, §3.3.1): "a MacBook can comfortably run
// TPC-H scale factor 1000: 'small data' is enough for most applications".
//
// We sweep the scale factor and run Q1/Q3/Q5/Q6 on one core, then print a
// per-query rows/sec figure and the implied single-core time at SF 1000.
// A second dimension sweeps the morsel-execution worker count (--threads,
// default 1,2,4,8) and lands the scaling curve in BENCH_e1.json; results
// are byte-identical at every thread count, only latency moves.

#include "bench/bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace agora {
namespace {

using bench::GetTpchDatabase;
using bench::MustExecute;

const char* QueryName(int q) {
  switch (q) {
    case 1:
      return "Q1";
    case 3:
      return "Q3";
    case 5:
      return "Q5";
    case 6:
      return "Q6";
    case 10:
      return "Q10";
    case 12:
      return "Q12";
    default:
      return "Q14";
  }
}

std::string QuerySql(int q) {
  switch (q) {
    case 1:
      return TpchQ1();
    case 3:
      return TpchQ3();
    case 5:
      return TpchQ5();
    case 6:
      return TpchQ6();
    case 10:
      return TpchQ10();
    case 12:
      return TpchQ12();
    default:
      return TpchQ14();
  }
}

// Args: {query number, scale factor * 1000, worker threads}.
void BM_TpchQuery(benchmark::State& state) {
  int query = static_cast<int>(state.range(0));
  double sf = static_cast<double>(state.range(1)) / 1000.0;
  int threads = static_cast<int>(state.range(2));
  Database* db = GetTpchDatabase(sf);
  db->set_execution_threads(threads);
  auto lineitem = db->catalog().GetTable("lineitem");
  int64_t lineitem_rows =
      lineitem.ok() ? static_cast<int64_t>((*lineitem)->num_rows()) : 0;

  std::string sql = QuerySql(query);
  int64_t result_rows = 0;
  for (auto _ : state) {
    QueryResult result = MustExecute(db, sql);
    result_rows = static_cast<int64_t>(result.num_rows());
    benchmark::DoNotOptimize(result_rows);
  }
  db->set_execution_threads(0);
  state.counters["sf"] = sf;
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["lineitem_rows"] = static_cast<double>(lineitem_rows);
  state.counters["result_rows"] = static_cast<double>(result_rows);
  // Lineitems processed per second at this scale (headline metric);
  // scaled by iterations so the rate is per-iteration-correct.
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(lineitem_rows) *
          static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(QueryName(query)) + "/t" +
                 std::to_string(threads));
}

BENCHMARK(BM_TpchQuery)
    ->ArgsProduct({{1, 3, 5, 6, 10, 12, 14}, {10, 20, 50, 100}, {1, 4}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

/// Median-of-k wall-clock latency for one query at one worker count.
double MeasureLatencyMs(Database* db, const std::string& sql, int threads) {
  db->set_execution_threads(threads);
  MustExecute(db, sql);  // warm-up (tables cached, pool spun up)
  std::vector<double> samples;
  for (int i = 0; i < 5; ++i) {
    Timer timer;
    MustExecute(db, sql);
    samples.push_back(timer.ElapsedSeconds() * 1000.0);
  }
  db->set_execution_threads(0);
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Hash-kernel and expression-engine health figures for one query, from
/// an instrumented run (see docs/BENCH_SCHEMA.md for the exact
/// definitions).
struct HashKernelStats {
  double ht_load_factor = 0.0;       // entries / slots
  double ht_probes_per_lookup = 0.0; // probe_steps / lookups
  double bloom_hit_rate = 0.0;       // filtered / checked
  int64_t expr_rows_evaluated = 0;   // rows through non-leaf expr kernels
};

HashKernelStats CollectHashStats(Database* db, const std::string& sql,
                                 int threads) {
  db->set_execution_threads(threads);
  QueryResult result = MustExecute(db, sql);
  db->set_execution_threads(0);
  const ExecStats& s = result.stats();
  HashKernelStats h;
  h.expr_rows_evaluated = s.expr_rows_evaluated;
  if (s.hash_table_slots > 0) {
    h.ht_load_factor = static_cast<double>(s.hash_table_entries) /
                       static_cast<double>(s.hash_table_slots);
  }
  if (s.hash_table_lookups > 0) {
    h.ht_probes_per_lookup = static_cast<double>(s.hash_table_probe_steps) /
                             static_cast<double>(s.hash_table_lookups);
  }
  if (s.bloom_checked_rows > 0) {
    h.bloom_hit_rate = static_cast<double>(s.bloom_filtered_rows) /
                       static_cast<double>(s.bloom_checked_rows);
  }
  return h;
}

/// Runs the query × scale × thread sweep and writes BENCH_e1.json.
void WriteScalingJson(const std::vector<int>& thread_counts,
                      const std::vector<double>& scales,
                      const std::vector<int>& queries) {
  const char* path = "BENCH_e1.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::printf("[E1] cannot open %s for writing; skipping JSON\n", path);
    return;
  }

  std::fprintf(out, "{\n  \"experiment\": \"e1_small_data\",\n");
  std::fprintf(out, "  \"pool_threads\": %zu,\n",
               ThreadPool::Global()->size());
  std::fprintf(out, "  \"results\": [\n");
  bool first = true;
  for (double sf : scales) {
    Database* db = GetTpchDatabase(sf);
    for (int q : queries) {
      std::string sql = QuerySql(q);
      double base_ms = 0.0;
      for (int threads : thread_counts) {
        double ms = MeasureLatencyMs(db, sql, threads);
        if (threads == thread_counts.front()) base_ms = ms;
        HashKernelStats hs = CollectHashStats(db, sql, threads);
        // Expression throughput: kernel-rows per wall second. Counts
        // every row flowing through a non-leaf expression kernel, so a
        // selective fused filter (fewer kernel rows per scanned row)
        // and a faster engine both move it.
        double expr_mrows_per_s =
            ms > 0.0 ? static_cast<double>(hs.expr_rows_evaluated) /
                           (ms / 1000.0) / 1e6
                     : 0.0;
        if (threads == thread_counts.front()) {
          std::printf("[E1] expr throughput %s SF %g: %lld kernel rows, "
                      "%.1f Mrows/s\n",
                      QueryName(q), sf,
                      static_cast<long long>(hs.expr_rows_evaluated),
                      expr_mrows_per_s);
        }
        if (!first) std::fprintf(out, ",\n");
        first = false;
        std::fprintf(out,
                     "    {\"query\": \"%s\", \"scale_factor\": %g, "
                     "\"threads\": %d, \"latency_ms\": %.4f, "
                     "\"speedup_vs_1t\": %.3f, "
                     "\"ht_load_factor\": %.4f, "
                     "\"ht_probes_per_lookup\": %.4f, "
                     "\"bloom_hit_rate\": %.4f, "
                     "\"expr_rows_evaluated\": %lld, "
                     "\"expr_mrows_per_s\": %.2f}",
                     QueryName(q), sf, threads, ms,
                     ms > 0.0 ? base_ms / ms : 0.0, hs.ht_load_factor,
                     hs.ht_probes_per_lookup, hs.bloom_hit_rate,
                     static_cast<long long>(hs.expr_rows_evaluated),
                     expr_mrows_per_s);
      }
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("[E1] thread-scaling sweep written to %s\n", path);
}

}  // namespace
}  // namespace agora

int main(int argc, char** argv) {
  // --threads=a,b,c selects the worker counts for the scaling sweep.
  // --smoke shrinks the run to a CI-sized check: SF 0.01, Q1/Q3/Q5,
  // one thread, no gbench sweep — it exists to prove the binary runs
  // and BENCH_e1.json comes out well-formed.
  std::vector<int> thread_counts = {1, 2, 4, 8};
  bool smoke = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--threads=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      thread_counts.clear();
      for (const char* p = argv[i] + std::strlen(prefix); *p != '\0';) {
        int n = std::atoi(p);
        if (n > 0) thread_counts.push_back(n);
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      if (thread_counts.empty()) thread_counts = {1};
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out_argc++] = argv[i];  // pass everything else to gbench
    }
  }
  argc = out_argc;
  std::vector<double> scales = {0.01, 0.05, 0.1};
  std::vector<int> queries = {1, 3, 5, 6, 10, 12, 14};
  if (smoke) {
    thread_counts = {1};
    scales = {0.01};
    queries = {1, 3, 5};
  }
  // Size the shared pool for the largest requested sweep point unless the
  // user pinned it; must happen before the first query builds the pool.
  int max_threads = 1;
  for (int t : thread_counts) max_threads = std::max(max_threads, t);
  setenv("AGORA_THREADS", std::to_string(max_threads).c_str(), 0);

  agora::bench::PrintClaim(
      "E1: small data is enough (TPC-H on one core)",
      "\"a MacBook can comfortably run TPC-H scale factor 1000: 'small "
      "data' is enough\" (panel §3.3.1)",
      "latency grows ~linearly in SF; per-query Mrows/s stays roughly "
      "flat, so extrapolating any row to SF1000 (~6B lineitems) lands in "
      "minutes on one core — parallel morsel execution divides the "
      "single-core time by the scaling factor in BENCH_e1.json");
  benchmark::Initialize(&argc, argv);
  if (!smoke) benchmark::RunSpecifiedBenchmarks();

  agora::WriteScalingJson(thread_counts, scales, queries);

  if (smoke) {
    std::printf("[E1] smoke run complete\n");
    benchmark::Shutdown();
    return 0;
  }

  // Post-run extrapolation using a quick Q6 measurement at SF 0.1.
  agora::Database* db = agora::bench::GetTpchDatabase(0.1);
  auto lineitem = db->catalog().GetTable("lineitem");
  double rows = static_cast<double>((*lineitem)->num_rows());
  db->set_execution_threads(1);
  agora::Timer timer;
  agora::bench::MustExecute(db, agora::TpchQ6());
  double seconds = timer.ElapsedSeconds();
  db->set_execution_threads(0);
  double rows_per_s = rows / seconds;
  double sf1000_rows = 6.0012e9;
  std::printf(
      "\n[E1 verdict] Q6 scans %.2f Mrows/s single-core; "
      "SF1000 (~6.0B lineitems) => ~%.1f minutes for a full Q6 scan on "
      "ONE core (parallelism divides this) — consistent with the claim.\n",
      rows_per_s / 1e6, sf1000_rows / rows_per_s / 60.0);
  benchmark::Shutdown();
  return 0;
}
