#ifndef AGORA_STORAGE_CHUNK_H_
#define AGORA_STORAGE_CHUNK_H_

#include <string>
#include <vector>

#include "storage/column_vector.h"
#include "types/schema.h"

namespace agora {

/// Number of rows processed per batch by the vectorized engine.
inline constexpr size_t kChunkSize = 2048;

/// A batch of rows in columnar form — the unit of data flow between
/// execution operators.
class Chunk {
 public:
  Chunk() = default;
  /// Creates an empty chunk with one column per schema field.
  explicit Chunk(const Schema& schema);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? explicit_rows_ : columns_[0].size();
  }
  bool empty() const { return num_rows() == 0; }

  const ColumnVector& column(size_t i) const { return columns_[i]; }
  ColumnVector& column(size_t i) { return columns_[i]; }
  /// All columns at once (batch kernels like GroupKeyTable::FindOrCreate
  /// take the key columns as one vector).
  const std::vector<ColumnVector>& columns() const { return columns_; }
  void AddColumn(ColumnVector col) { columns_.push_back(std::move(col)); }

  /// For zero-column results (e.g. COUNT(*) pipelines) the row count must
  /// be carried explicitly.
  void SetExplicitRowCount(size_t n) { explicit_rows_ = n; }

  /// Appends one row of Values (slow path; tests and tiny inserts).
  void AppendRow(const std::vector<Value>& row);

  /// Appends row `row` from `other` (schemas must align).
  void AppendRowFrom(const Chunk& other, size_t row);

  /// Keeps only rows named in `sel` (in order). Applies to every column.
  Chunk GatherRows(const std::vector<uint32_t>& sel) const;

  /// Boxes one row as Values (result-set boundary).
  std::vector<Value> RowValues(size_t row) const;

  /// Sum of column memory (resource accounting).
  size_t MemoryBytes() const;

  /// Multi-line "v1 | v2 | ..." rendering for tests/debugging.
  std::string ToString(size_t max_rows = 10) const;

 private:
  std::vector<ColumnVector> columns_;
  size_t explicit_rows_ = 0;
};

}  // namespace agora

#endif  // AGORA_STORAGE_CHUNK_H_
