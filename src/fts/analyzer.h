#ifndef AGORA_FTS_ANALYZER_H_
#define AGORA_FTS_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace agora {

/// Text analysis options for the full-text pipeline.
struct AnalyzerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  size_t min_token_length = 2;
};

/// Splits `text` into index terms: non-alphanumeric boundaries, ASCII
/// lowercasing, stopword removal ("the", "a", "of", ...), minimum length.
/// Deterministic and allocation-light; shared by indexing and querying so
/// both sides agree on terms.
std::vector<std::string> AnalyzeText(std::string_view text,
                                     const AnalyzerOptions& options = {});

/// True if `word` (already lowercased) is in the built-in stopword list.
bool IsStopword(std::string_view word);

}  // namespace agora

#endif  // AGORA_FTS_ANALYZER_H_
