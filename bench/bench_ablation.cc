// Ablations for the design choices DESIGN.md calls out, independent of
// the paper experiments:
//   1. TopK fusion vs full Sort + Limit
//   2. Hash join vs nested-loop join across build-side sizes
//   3. ANN indexes: Flat (exact) vs IVF vs HNSW latency at equal recall
//      workloads

#include "bench/bench_common.h"
#include "common/rng.h"
#include "vec/flat_index.h"
#include "vec/hnsw_index.h"
#include "vec/ivf_index.h"

namespace agora {
namespace {

Database* GetWideTable() {
  static std::unique_ptr<Database> db;
  if (db == nullptr) {
    db = std::make_unique<Database>();
    bench::MustExecute(db.get(),
                       "CREATE TABLE wide (id BIGINT, score DOUBLE, "
                       "payload VARCHAR)");
    Rng rng(11);
    std::string sql;
    for (int i = 0; i < 200000; ++i) {
      if (sql.empty()) sql = "INSERT INTO wide VALUES ";
      sql += "(" + std::to_string(i) + ", " +
             std::to_string(rng.UniformDouble(0, 1e6)) + ", 'x'),";
      if (i % 1000 == 999) {
        sql.back() = ' ';
        bench::MustExecute(db.get(), sql);
        sql.clear();
      }
    }
  }
  return db.get();
}

/// TopK fusion ablation: ORDER BY + LIMIT with and without the fused
/// bounded-memory operator.
void BM_TopKvsSortLimit(benchmark::State& state) {
  bool fused = state.range(0) == 1;
  static std::unique_ptr<Database> plain_db;
  Database* db = GetWideTable();
  if (!fused) {
    if (plain_db == nullptr) {
      DatabaseOptions options;
      options.physical.enable_topk = false;
      plain_db = std::make_unique<Database>(options);
      auto table = db->catalog().GetTable("wide");
      AGORA_CHECK(table.ok());
      AGORA_CHECK(plain_db->catalog().RegisterTable(*table).ok());
    }
    db = plain_db.get();
  }
  const std::string sql =
      "SELECT id, score FROM wide ORDER BY score DESC LIMIT 10";
  for (auto _ : state) {
    QueryResult result = bench::MustExecute(db, sql);
    benchmark::DoNotOptimize(result.num_rows());
  }
  state.SetLabel(fused ? "fused TopK (bounded memory)"
                       : "full Sort + Limit");
}

BENCHMARK(BM_TopKvsSortLimit)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Join algorithm crossover: probe 20k rows against build sides of
/// varying size, hash vs nested loops.
void BM_JoinAlgorithm(benchmark::State& state) {
  bool hash = state.range(0) == 1;
  int64_t build_rows = state.range(1);
  DatabaseOptions options;
  options.physical.enable_hash_join = hash;
  Database db(options);
  bench::MustExecute(&db, "CREATE TABLE probe (k BIGINT)");
  bench::MustExecute(&db, "CREATE TABLE build (k BIGINT, tag VARCHAR)");
  Rng rng(7);
  std::string sql;
  for (int i = 0; i < 20000; ++i) {
    if (sql.empty()) sql = "INSERT INTO probe VALUES ";
    sql += "(" + std::to_string(rng.Uniform(0, build_rows - 1)) + "),";
    if (i % 1000 == 999) {
      sql.back() = ' ';
      bench::MustExecute(&db, sql);
      sql.clear();
    }
  }
  for (int64_t i = 0; i < build_rows; ++i) {
    if (sql.empty()) sql = "INSERT INTO build VALUES ";
    sql += "(" + std::to_string(i) + ", 't'),";
    if (i % 1000 == 999 || i + 1 == build_rows) {
      sql.back() = ' ';
      bench::MustExecute(&db, sql);
      sql.clear();
    }
  }
  const std::string query =
      "SELECT COUNT(*) FROM probe p JOIN build b ON p.k = b.k";
  for (auto _ : state) {
    QueryResult result = bench::MustExecute(&db, query);
    benchmark::DoNotOptimize(result.num_rows());
  }
  state.SetLabel(std::string(hash ? "hash join" : "nested loops") +
                 ", build=" + std::to_string(build_rows));
}

BENCHMARK(BM_JoinAlgorithm)
    ->ArgsProduct({{1, 0}, {4, 64, 1024}})
    ->Unit(benchmark::kMillisecond);

/// ANN ablation: exact flat scan vs IVF vs HNSW on the same clustered
/// dataset; counters carry recall@10 against the flat ground truth.
struct AnnFixture {
  std::vector<Vecf> data;
  std::vector<Vecf> queries;
  std::unique_ptr<FlatIndex> flat;
  std::unique_ptr<IvfFlatIndex> ivf;
  std::unique_ptr<HnswIndex> hnsw;
  std::vector<std::vector<Neighbor>> truth;
};

AnnFixture* GetAnnFixture() {
  static std::unique_ptr<AnnFixture> fixture;
  if (fixture != nullptr) return fixture.get();
  fixture = std::make_unique<AnnFixture>();
  Rng rng(21);
  constexpr size_t kN = 20000, kDim = 32;
  std::vector<Vecf> centers;
  for (int c = 0; c < 16; ++c) {
    Vecf center(kDim);
    for (float& x : center) x = static_cast<float>(rng.Gaussian()) * 8.0f;
    centers.push_back(std::move(center));
  }
  for (size_t i = 0; i < kN; ++i) {
    Vecf v(kDim);
    const Vecf& center = centers[i % centers.size()];
    for (size_t d = 0; d < kDim; ++d) {
      v[d] = center[d] + static_cast<float>(rng.Gaussian());
    }
    fixture->data.push_back(std::move(v));
  }
  fixture->flat = std::make_unique<FlatIndex>(kDim);
  IvfOptions ivf_options;
  ivf_options.nlist = 64;
  ivf_options.nprobe = 8;
  fixture->ivf = std::make_unique<IvfFlatIndex>(kDim, ivf_options);
  AGORA_CHECK(fixture->ivf->Train(fixture->data).ok());
  fixture->hnsw = std::make_unique<HnswIndex>(kDim, HnswOptions{});
  for (size_t i = 0; i < kN; ++i) {
    AGORA_CHECK(fixture->flat->Add(static_cast<int64_t>(i),
                                   fixture->data[i]).ok());
    AGORA_CHECK(fixture->ivf->Add(static_cast<int64_t>(i),
                                  fixture->data[i]).ok());
    AGORA_CHECK(fixture->hnsw->Add(static_cast<int64_t>(i),
                                   fixture->data[i]).ok());
  }
  for (int q = 0; q < 50; ++q) {
    Vecf query = fixture->data[static_cast<size_t>(rng.Uniform(0, kN - 1))];
    for (float& x : query) x += static_cast<float>(rng.Gaussian()) * 0.3f;
    auto truth = fixture->flat->Search(query, 10);
    AGORA_CHECK(truth.ok());
    fixture->truth.push_back(std::move(*truth));
    fixture->queries.push_back(std::move(query));
  }
  return fixture.get();
}

void BM_AnnIndex(benchmark::State& state) {
  AnnFixture* fixture = GetAnnFixture();
  int which = static_cast<int>(state.range(0));
  size_t q = 0;
  double recall_sum = 0;
  int64_t searches = 0;
  for (auto _ : state) {
    const Vecf& query = fixture->queries[q % fixture->queries.size()];
    Result<std::vector<Neighbor>> result = std::vector<Neighbor>{};
    switch (which) {
      case 0:
        result = fixture->flat->Search(query, 10);
        break;
      case 1:
        result = fixture->ivf->Search(query, 10);
        break;
      default:
        result = fixture->hnsw->Search(query, 10);
        break;
    }
    AGORA_CHECK(result.ok());
    recall_sum += RecallAtK(fixture->truth[q % fixture->truth.size()],
                            *result);
    ++searches;
    ++q;
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["recall_at_10"] =
      recall_sum / static_cast<double>(searches);
  state.SetLabel(which == 0 ? "flat (exact)"
                            : which == 1 ? "IVF nlist=64 nprobe=8"
                                         : "HNSW M=16 ef=50");
}

BENCHMARK(BM_AnnIndex)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace agora

int main(int argc, char** argv) {
  agora::bench::PrintClaim(
      "Ablations: engine design choices",
      "internal design validation (not a paper claim): TopK fusion, join "
      "algorithm choice, ANN index structures",
      "fused TopK beats sort+limit on large inputs; hash join wins except "
      "vs tiny build sides; HNSW/IVF trade tiny recall loss for large "
      "latency wins over exact flat scan");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
