#ifndef AGORA_STORAGE_COLUMN_VECTOR_H_
#define AGORA_STORAGE_COLUMN_VECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "types/type.h"
#include "types/value.h"

namespace agora {

/// A typed, nullable column of values in columnar layout.
///
/// Physical storage: kBool/kInt64/kDate share an int64 array; kDouble uses
/// a double array; kString uses a std::string array. A byte-per-row
/// validity vector tracks NULLs (1 = valid). This trades some space for
/// simple, branch-light kernels.
///
/// Two representation axes keep the expression engine zero-copy:
///
/// *Shared buffers (copy-on-write).* The payload lives in a refcounted
/// `Rep`; copying a ColumnVector shares it (O(1)), and every mutating
/// entry point calls EnsureUnique() to clone first when the buffer is
/// shared. A column reference in an expression is therefore a pointer
/// bump, and Table::GetChunk can hand out whole-column views safely:
/// a later Table mutation clones its own copy, never the reader's.
///
/// *Constant form.* A vector may represent `n` logical repetitions of a
/// single physical row (literals, folded expressions). Element accessors
/// are constant-transparent (they read physical row 0); raw-pointer and
/// batch-kernel entry points require flat vectors — callers flatten at
/// the boundary (Expr::Evaluate does this) or DCHECK-fail.
class ColumnVector {
 public:
  ColumnVector() : type_(TypeId::kInvalid) {}
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const {
    if (constant_) return logical_size_;
    return rep_ ? rep_->validity.size() : 0;
  }
  bool empty() const { return size() == 0; }

  /// True for the constant form: one physical row, `size()` logical rows.
  bool is_constant() const { return constant_; }

  /// Builds an `n`-row constant vector holding `v` (one physical row).
  static ColumnVector MakeConstant(TypeId type, const Value& v, size_t n);

  /// Expands the constant form into `size()` physical rows. No-op when
  /// already flat. Required before raw-pointer access or batch kernels.
  void Flatten();

  void Reserve(size_t n);
  void Clear();

  /// Makes this a flat, uniquely-owned vector of exactly `n` rows whose
  /// payload and validity are about to be overwritten (kernel outputs).
  void ResizeForOverwrite(size_t n);

  // -- Appends ---------------------------------------------------------
  void AppendNull();
  void AppendInt64(int64_t v);    // kBool/kInt64/kDate
  void AppendDouble(double v);    // kDouble
  void AppendString(std::string v);  // kString
  void AppendBool(bool v) { AppendInt64(v ? 1 : 0); }
  /// Appends a Value; DCHECKs the type matches (after null handling).
  void AppendValue(const Value& v);
  /// Appends row `row` of `other` (same type).
  void AppendFrom(const ColumnVector& other, size_t row);

  // -- Element access ---------------------------------------------------
  // Constant-transparent: logical row `i` maps to physical row 0 in the
  // constant form.
  bool IsNull(size_t i) const { return rep_->validity[PhysRow(i)] == 0; }
  bool IsValid(size_t i) const { return rep_->validity[PhysRow(i)] != 0; }
  int64_t GetInt64(size_t i) const { return rep_->ints[PhysRow(i)]; }
  double GetDouble(size_t i) const { return rep_->doubles[PhysRow(i)]; }
  const std::string& GetString(size_t i) const {
    return rep_->strings[PhysRow(i)];
  }
  bool GetBool(size_t i) const { return rep_->ints[PhysRow(i)] != 0; }
  /// Numeric view of row `i` regardless of int/double/date physical type.
  double GetNumeric(size_t i) const {
    size_t p = PhysRow(i);
    return type_ == TypeId::kDouble ? rep_->doubles[p]
                                    : static_cast<double>(rep_->ints[p]);
  }
  /// Boxes row `i` as a Value (allocates for strings).
  Value GetValue(size_t i) const;

  /// Mutates row `i` in place (same type; row must exist).
  void SetValue(size_t i, const Value& v);

  // -- Raw data (hot loops; flat vectors only) ---------------------------
  const int64_t* int64_data() const {
    AGORA_DCHECK(!constant_);
    return rep_ ? rep_->ints.data() : nullptr;
  }
  const double* double_data() const {
    AGORA_DCHECK(!constant_);
    return rep_ ? rep_->doubles.data() : nullptr;
  }
  const std::vector<std::string>& string_data() const {
    AGORA_DCHECK(!constant_);
    return rep_ ? rep_->strings : EmptyStrings();
  }
  const uint8_t* validity_data() const {
    AGORA_DCHECK(!constant_);
    return rep_ ? rep_->validity.data() : nullptr;
  }
  int64_t* mutable_int64_data() { return EnsureUnique()->ints.data(); }
  double* mutable_double_data() { return EnsureUnique()->doubles.data(); }
  uint8_t* mutable_validity_data() {
    return EnsureUnique()->validity.data();
  }

  /// True if no row is NULL (fast path for kernels).
  bool AllValid() const;

  /// Hashes row `i` (for hash join/aggregate keys).
  uint64_t HashRow(size_t i) const;

  // -- Batch kernels (exec/hash_table.h consumers) -----------------------

  /// Column-at-a-time hash kernel over rows [0, n). With `combine` false
  /// writes each row's hash into `hashes[i]`; with `combine` true folds
  /// it into the existing value via HashCombine (multi-column keys).
  /// `normalize_zero` hashes -0.0 as +0.0 (aggregate grouping semantics;
  /// the join path keeps raw bit patterns, matching HashRow). NULL rows
  /// hash to the fixed kNullHash in both modes.
  void HashBatch(uint64_t* hashes, size_t n, bool combine,
                 bool normalize_zero) const;

  /// ANDs per-pair key equality into `equal[0..n)`: equal[i] stays 1 only
  /// if row `rows[i]` of *this* equals row `other_rows[i]` of `other`.
  /// NULL equals NULL (grouping semantics). `bitwise_doubles` compares
  /// doubles by their (−0.0-normalized) bit pattern — the aggregate key
  /// contract, where NaN groups with bit-identical NaN; otherwise doubles
  /// compare by value (join CompareRows semantics).
  void BatchEqualRows(const uint32_t* rows, const ColumnVector& other,
                      const uint32_t* other_rows, size_t n,
                      bool bitwise_doubles, uint8_t* equal) const;

  /// Appends rows `sel[0..n)` of `src` in order; the sentinel UINT32_MAX
  /// appends NULL (outer-join padding). Batch equivalent of AppendFrom —
  /// the type dispatch happens once per call, not once per row.
  void AppendGatherPadded(const ColumnVector& src, const uint32_t* sel,
                          size_t n);

  /// Three-way compare of row `i` with row `j` of `other` (same type).
  /// NULLs order first.
  int CompareRows(size_t i, const ColumnVector& other, size_t j) const;

  /// Gathers `sel[0..n)` rows into a new vector (selection apply).
  ColumnVector Gather(const std::vector<uint32_t>& sel) const;

  /// Copies rows [begin, begin+count) into a new vector. A whole-vector
  /// slice of a flat vector shares the buffer (zero copy).
  ColumnVector Slice(size_t begin, size_t count) const;

  /// Approximate heap bytes used (for resource accounting). Shared
  /// buffers are counted once per referencing vector, matching the
  /// deep-copy accounting this replaced.
  size_t MemoryBytes() const;

  /// Debug verification (AGORA_VERIFY): checks that the payload array for
  /// the column's physical type covers every row the validity vector
  /// declares, so element accessors can never read past the payload.
  /// Returns an Internal status naming the mismatch.
  Status CheckConsistency() const;

 private:
  /// Refcounted payload. A null rep_ means an empty vector; every
  /// accessor that indexes rows may assume rep_ is set because row
  /// indexes only exist once something was appended.
  ///
  /// Each Rep charges its payload bytes to the MemoryTracker that was
  /// active on the creating thread (ScopedMemoryTracker installs the
  /// per-query tracker during execution; table loads and tests run
  /// untracked). Charges are refreshed at mutation sites with a small
  /// granularity so per-row appends stay cheap, and the exact amount is
  /// released when the Rep dies — shared buffers are charged once per
  /// Rep, not per referencing vector.
  struct Rep {
    Rep() = default;
    /// Untracked Rep (function-local statics must not pin a query
    /// tracker).
    explicit Rep(std::nullptr_t)
        : charge(std::shared_ptr<MemoryTracker>(nullptr)) {}
    Rep(const Rep& other);
    Rep& operator=(const Rep&) = delete;

    /// Refreshes `charge` to the current payload size when it drifted
    /// more than the charge granularity.
    void Recharge();

    std::vector<uint8_t> validity;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    /// Incremental sum over `strings` of sizeof(std::string) +
    /// capacity(), maintained at every string mutation site so
    /// MemoryBytes() and Recharge() are O(1).
    size_t string_bytes = 0;
    MemoryCharge charge;
  };

  size_t PhysRow(size_t i) const { return constant_ ? 0 : i; }

  /// Clones the rep when shared, creates it when absent, and flattens the
  /// constant form — after this call mutation is safe.
  Rep* EnsureUnique();

  static const std::vector<std::string>& EmptyStrings();

  TypeId type_;
  std::shared_ptr<Rep> rep_;
  bool constant_ = false;
  size_t logical_size_ = 0;  // meaningful only when constant_
};

}  // namespace agora

#endif  // AGORA_STORAGE_COLUMN_VECTOR_H_
