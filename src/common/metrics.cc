#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace agora {

namespace {

// Referenced only from assert(), which NDEBUG builds compile out.
[[maybe_unused]] bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Shortest round-trippable rendering: integers print without a
/// fraction, everything else with up to 6 fractional digits trimmed.
std::string FormatMetricValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

MetricSpan::MetricSpan(std::vector<OpTiming>* timings, MetricSpan** stack_top,
                       int op_id)
    : timings_(timings), stack_top_(stack_top), op_id_(op_id) {
  if (timings_ != nullptr && op_id_ >= 0 && stack_top_ != nullptr) {
    parent_ = *stack_top_;
    *stack_top_ = this;
  } else {
    timings_ = nullptr;  // disabled
  }
  start_ = std::chrono::steady_clock::now();
}

MetricSpan::~MetricSpan() {
  if (timings_ == nullptr) return;
  const int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count();
  // Resolve the slot by index only now: the vector may have been
  // resized (worker merges register new ops) while the span was open.
  if (static_cast<size_t>(op_id_) >= timings_->size()) {
    timings_->resize(op_id_ + 1);
  }
  OpTiming& slot = (*timings_)[op_id_];
  slot.busy_ns += std::max<int64_t>(0, elapsed_ns - child_ns_);
  slot.rows_out += rows_;
  slot.invocations += 1;
  if (parent_ != nullptr) parent_->AddChildTime(elapsed_ns);
  *stack_top_ = parent_;
}

std::string RenderProfileTree(const std::vector<OperatorProfileNode>& nodes) {
  int64_t total_ns = 0;
  for (const auto& node : nodes) total_ns += node.busy_ns;

  size_t name_width = 0;
  for (const auto& node : nodes) {
    name_width = std::max(name_width, 2 * node.depth + node.name.size());
  }

  std::string out = "[analyze] per-operator profile (self time)";
  for (const auto& node : nodes) {
    std::string label(2 * node.depth, ' ');
    label += node.name;
    label.resize(std::max(name_width, label.size()), ' ');
    const double ms = node.busy_ns / 1e6;
    const double share =
        total_ns > 0 ? 100.0 * node.busy_ns / total_ns : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "\n[analyze]   %s  %9.3f ms  %5.1f%%",
                  label.c_str(), ms, share);
    out += line;
    out += "  rows=" + FormatCount(node.rows_out);
    out += "  calls=" + FormatCount(node.invocations);
  }
  return out;
}

void MetricsRegistry::Add(std::string_view name, double delta) {
  Add(name, "", delta);
}

void MetricsRegistry::Add(std::string_view name, std::string_view label,
                          double delta) {
  assert(ValidMetricName(name));
  MutexLock lock(mu_);
  counters_[std::string(name)][std::string(label)] += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  assert(ValidMetricName(name));
  MutexLock lock(mu_);
  gauges_[std::string(name)] = value;
}

double MetricsRegistry::CounterValue(std::string_view name,
                                     std::string_view label) const {
  MutexLock lock(mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) return 0.0;
  auto jt = it->second.find(std::string(label));
  return jt == it->second.end() ? 0.0 : jt->second;
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  assert(ValidMetricName(name));
  MutexLock lock(mu_);
  Histogram& h = histograms_[std::string(name)];
  size_t bucket = kHistogramBuckets - 1;  // +Inf
  for (size_t i = 0; i < kHistogramBuckets - 1; ++i) {
    if (value <= kHistogramBounds[i]) {
      bucket = i;
      break;
    }
  }
  h.buckets[bucket] += 1;
  h.sum += value;
  h.count += 1;
}

int64_t MetricsRegistry::HistogramCount(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(std::string(name));
  return it == histograms_.end() ? 0 : it->second.count;
}

double MetricsRegistry::HistogramSum(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(std::string(name));
  return it == histograms_.end() ? 0.0 : it->second.sum;
}

std::vector<int64_t> MetricsRegistry::HistogramBucketCounts(
    std::string_view name) const {
  MutexLock lock(mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) return {};
  std::vector<int64_t> cumulative(kHistogramBuckets, 0);
  int64_t running = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    running += it->second.buckets[i];
    cumulative[i] = running;
  }
  return cumulative;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

std::vector<std::string> MetricsRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, series] : counters_) names.push_back(name);
  for (const auto& [name, value] : gauges_) names.push_back(name);
  for (const auto& [name, hist] : histograms_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string MetricsRegistry::Snapshot(MetricsFormat format) const {
  MutexLock lock(mu_);
  std::string out;
  if (format == MetricsFormat::kJson) {
    out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, series] : counters_) {
      out += first ? "\n" : ",\n";
      first = false;
      // A counter with only the unlabeled series prints as a scalar;
      // labeled counters print as an object keyed by label value.
      if (series.size() == 1 && series.begin()->first.empty()) {
        out += "    \"" + name +
               "\": " + FormatMetricValue(series.begin()->second);
      } else {
        out += "    \"" + name + "\": {";
        bool first_label = true;
        for (const auto& [label, value] : series) {
          out += first_label ? "" : ", ";
          first_label = false;
          out += "\"" + label + "\": " + FormatMetricValue(value);
        }
        out += "}";
      }
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"" + name + "\": " + FormatMetricValue(value);
    }
    out += "\n  }";
    // The histograms key appears only once a histogram exists, so
    // counter/gauge-only snapshots keep the PR 3 document shape.
    if (!histograms_.empty()) {
      out += ",\n  \"histograms\": {";
      first = true;
      for (const auto& [name, hist] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"count\": " +
               FormatMetricValue(static_cast<double>(hist.count)) +
               ", \"sum\": " + FormatMetricValue(hist.sum) +
               ", \"buckets\": {";
        int64_t cumulative = 0;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          cumulative += hist.buckets[i];
          if (i > 0) out += ", ";
          out += "\"";
          out += i + 1 < kHistogramBuckets
                     ? FormatMetricValue(kHistogramBounds[i])
                     : std::string("+Inf");
          out += "\": " + FormatMetricValue(static_cast<double>(cumulative));
        }
        out += "}}";
      }
      out += "\n  }";
    }
    out += "\n}\n";
  } else {
    for (const auto& [name, series] : counters_) {
      out += "# TYPE agora_" + name + " counter\n";
      for (const auto& [label, value] : series) {
        out += "agora_" + name;
        if (!label.empty()) out += "{op=\"" + label + "\"}";
        out += " " + FormatMetricValue(value) + "\n";
      }
    }
    for (const auto& [name, value] : gauges_) {
      out += "# TYPE agora_" + name + " gauge\n";
      out += "agora_" + name + " " + FormatMetricValue(value) + "\n";
    }
    for (const auto& [name, hist] : histograms_) {
      out += "# TYPE agora_" + name + " histogram\n";
      int64_t cumulative = 0;
      for (size_t i = 0; i < kHistogramBuckets; ++i) {
        cumulative += hist.buckets[i];
        const std::string le = i + 1 < kHistogramBuckets
                                   ? FormatMetricValue(kHistogramBounds[i])
                                   : std::string("+Inf");
        out += "agora_" + name + "_bucket{le=\"" + le + "\"} " +
               FormatMetricValue(static_cast<double>(cumulative)) + "\n";
      }
      out += "agora_" + name + "_sum " + FormatMetricValue(hist.sum) + "\n";
      out += "agora_" + name + "_count " +
             FormatMetricValue(static_cast<double>(hist.count)) + "\n";
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace agora
