// Suppression fixture for scripts/agora_lint.py (never compiled): the
// justification comment must silence the finding, so this fixture
// expects no violations at all.
// lint-as: src/exec/allowed_container.cc

#include <map>

namespace agora {

struct ColdPathState {
  // Bounded, cold-path config map: not on the per-row hot path.
  std::map<int, int> options;  // agora-lint: allow(exec-node-container) cold path, bounded size
};

}  // namespace agora
