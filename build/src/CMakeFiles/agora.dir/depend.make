# Empty dependencies file for agora.
# This may be replaced when dependencies are built.
