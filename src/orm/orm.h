#ifndef AGORA_ORM_ORM_H_
#define AGORA_ORM_ORM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/database.h"

namespace agora {

/// A loaded ORM entity: a bag of column values keyed by column name.
class Entity {
 public:
  Entity() = default;
  Entity(std::string table,
         std::unordered_map<std::string, Value> fields)
      : table_(std::move(table)), fields_(std::move(fields)) {}

  const std::string& table() const { return table_; }
  /// Field accessor; aborts on unknown column (programmer error).
  const Value& Get(const std::string& column) const;
  bool Has(const std::string& column) const {
    return fields_.count(column) > 0;
  }
  void Set(std::string column, Value v) {
    fields_[std::move(column)] = std::move(v);
  }
  size_t num_fields() const { return fields_.size(); }

 private:
  std::string table_;
  std::unordered_map<std::string, Value> fields_;
};

/// Declarative model description: table, primary key and has-many
/// relations (child table + foreign key back to this model).
struct ModelDef {
  std::string table;
  std::string primary_key = "id";
  struct HasMany {
    std::string name;         // relation name, e.g. "orders"
    std::string child_table;  // e.g. "orders"
    std::string foreign_key;  // e.g. "customer_id"
  };
  std::vector<HasMany> has_many;
};

/// Renders a Value as a SQL literal ('it''s', 42, 3.5, DATE '...', NULL).
std::string ValueToSqlLiteral(const Value& v);

/// A deliberately faithful miniature ORM session over a Database.
///
/// It reproduces the access patterns the SIGMOD'25 panel points at when
/// saying "many performance problems are due to the ORM and never arise
/// at the DBMS":
///
///  * every `Find`/`All` is its own SELECT statement (a round trip),
///  * relations load LAZILY — touching `Related()` for each of N parents
///    issues N additional SELECTs (the classic N+1 pattern),
///  * `Insert` writes one row per statement.
///
/// The session also exposes `statements_issued()` so experiments can
/// count round trips, and `EagerLoadChildren()` — the set-oriented join
/// a database person would write — for comparison.
class OrmSession {
 public:
  explicit OrmSession(Database* db) : db_(db) {}

  /// Registers a model; relations may then be loaded by name.
  void RegisterModel(ModelDef def);

  /// SELECT * FROM t WHERE pk = id  (one statement).
  Result<Entity> Find(const std::string& model, const Value& id);

  /// SELECT * FROM t [WHERE ...]  (one statement).
  Result<std::vector<Entity>> All(const std::string& model,
                                  const std::string& where = "");

  /// Lazily loads a has-many relation of `parent` — one SELECT per call,
  /// i.e. the "+1" of N+1.
  Result<std::vector<Entity>> Related(const Entity& parent,
                                      const std::string& relation);

  /// INSERT INTO t (cols) VALUES (...)  (one statement per row).
  Status Insert(const std::string& model,
                const std::unordered_map<std::string, Value>& fields);

  /// The set-oriented alternative: ONE join statement fetching every
  /// parent's children, grouped client-side by parent key. Returns
  /// parent-key-literal -> children.
  Result<std::unordered_map<std::string, std::vector<Entity>>>
  EagerLoadChildren(const std::string& model, const std::string& relation);

  /// Statements this session has issued (round-trip accounting for E2).
  int64_t statements_issued() const { return statements_issued_; }
  void ResetStatementCount() { statements_issued_ = 0; }

 private:
  Result<const ModelDef*> GetModel(const std::string& model) const;
  Result<const ModelDef::HasMany*> GetRelation(const ModelDef& def,
                                               const std::string& name) const;
  Result<QueryResult> Run(const std::string& sql);
  static std::vector<Entity> ToEntities(const std::string& table,
                                        const QueryResult& result);

  Database* db_;
  std::unordered_map<std::string, ModelDef> models_;
  int64_t statements_issued_ = 0;
};

}  // namespace agora

#endif  // AGORA_ORM_ORM_H_
