// E7 — sustainability-aware benchmarking: report resource footprint
// (bytes moved, rows touched, an energy proxy) alongside latency, because
// the latency ranking and the resource ranking of plans can differ.
//
// Paper quote (SIGMOD'25, §4.1, Pınar Tözün): expand our benchmarking
// tradition to "systematic benchmarking (not only for throughput/latency
// but also for sustainability)" and treat resource-efficiency as
// fundamental, not a nice-to-have.

#include "bench/bench_common.h"

namespace agora {
namespace {

using bench::GetTpchDatabase;
using bench::MustExecute;

constexpr double kSf = 0.05;

struct Workload {
  const char* name;
  std::string sql;
  bool zone_maps;  // physical knob toggled to create latency/energy splits
};

std::vector<Workload>* GetWorkloads() {
  static auto* workloads = new std::vector<Workload>{
      {"Q1 full-scan aggregate", TpchQ1(), true},
      {"Q6 selective scan (+zonemaps)", TpchQ6(), true},
      {"Q6 selective scan (no zonemaps)", TpchQ6(), false},
      {"Q3 3-way join", TpchQ3(), true},
      {"Q5 6-way join", TpchQ5(), true},
  };
  return workloads;
}

/// Databases over the same TPC-H data, but with lineitem physically
/// clustered by l_shipdate so zone maps have something to prune — the
/// zone-map on/off pair then shows a latency AND energy split.
Database* GetDbFor(bool zone_maps) {
  static std::unique_ptr<Database> zm_db, no_zm_db;
  std::unique_ptr<Database>& slot = zone_maps ? zm_db : no_zm_db;
  if (slot == nullptr) {
    DatabaseOptions options;
    options.optimizer.enable_zone_maps = zone_maps;
    options.physical.enable_zone_maps = zone_maps;
    slot = std::make_unique<Database>(options);
    Database* source = GetTpchDatabase(kSf);
    for (const std::string& name : source->catalog().TableNames()) {
      auto table = source->catalog().GetTable(name);
      AGORA_CHECK(table.ok());
      if (name == "lineitem") {
        static std::shared_ptr<Table> clustered;
        if (clustered == nullptr) {
          size_t shipdate = *(*table)->schema().FindField("l_shipdate");
          clustered = (*table)->SortedCopy("lineitem", shipdate);
          clustered->BuildZoneMaps();
        }
        AGORA_CHECK(slot->catalog().RegisterTable(clustered).ok());
      } else {
        AGORA_CHECK(slot->catalog().RegisterTable(*table).ok());
      }
    }
  }
  return slot.get();
}

void BM_QueryWithResourceAccounting(benchmark::State& state) {
  const Workload& workload =
      (*GetWorkloads())[static_cast<size_t>(state.range(0))];
  Database* db = GetDbFor(workload.zone_maps);
  ExecStats stats;
  for (auto _ : state) {
    QueryResult result = MustExecute(db, workload.sql);
    stats = result.stats();
    benchmark::DoNotOptimize(result.num_rows());
  }
  state.counters["MB_materialized"] =
      static_cast<double>(stats.bytes_materialized) / (1024.0 * 1024.0);
  state.counters["rows_scanned"] = static_cast<double>(stats.rows_scanned);
  state.counters["rows_joined"] = static_cast<double>(stats.rows_joined);
  state.counters["joules_proxy"] = stats.JoulesProxy();
  state.SetLabel(workload.name);
}

BENCHMARK(BM_QueryWithResourceAccounting)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

}  // namespace
}  // namespace agora

int main(int argc, char** argv) {
  agora::bench::PrintClaim(
      "E7: sustainability-aware benchmarking (resource proxy vs latency)",
      "Tözün (§4.1): benchmark \"not only for throughput/latency but also "
      "for sustainability\" — resource-efficiency as a first-class metric",
      "every row reports MB materialized, rows touched and a joules proxy "
      "next to latency; Q6-with-zonemaps wins BOTH latency and energy over "
      "Q6-without (pruning saves data movement), while join-heavy Q3 can "
      "cost more energy per ms than scan-heavy Q1 — latency alone "
      "misranks plans for efficiency");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
