#ifndef AGORA_SERVER_BOOTSTRAP_H_
#define AGORA_SERVER_BOOTSTRAP_H_

// Data bootstrap for agora_serve and bench_http: one embedded Database
// loaded with both workload families the paper's "diverse workloads"
// argument combines — TPC-H relational tables and a hybrid document
// collection (keyword + vector + attributes) with its search indexes
// attached, so served SQL can mix joins, MATCH() and KNN() against the
// same engine.

#include <cstddef>
#include <memory>

#include "common/result.h"
#include "engine/database.h"
#include "hybrid/collection.h"

namespace agora {

/// The served dataset. The HybridCollection owns the Database (its
/// catalog holds pointers into the collection's indexes, so the
/// collection is not movable and must outlive the server).
struct ServedData {
  std::unique_ptr<HybridCollection> collection;

  Database* db() { return &collection->database(); }
};

/// Builds the served dataset: `hybrid_docs` synthetic documents with
/// `dim`-dimensional embeddings (deterministic, seed 42) plus TPC-H at
/// `tpch_sf` generated into the same catalog. Either part can be
/// skipped with 0.
Result<ServedData> MakeServedData(double tpch_sf, size_t hybrid_docs,
                                  size_t dim = 32);

}  // namespace agora

#endif  // AGORA_SERVER_BOOTSTRAP_H_
