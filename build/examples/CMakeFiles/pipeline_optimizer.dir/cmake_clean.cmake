file(REMOVE_RECURSE
  "CMakeFiles/pipeline_optimizer.dir/pipeline_optimizer.cpp.o"
  "CMakeFiles/pipeline_optimizer.dir/pipeline_optimizer.cpp.o.d"
  "pipeline_optimizer"
  "pipeline_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
